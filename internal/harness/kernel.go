package harness

import "repro/internal/harness/report"

// KernelRow quantifies how well a single-workload kernel represents a
// benchmark (Section VII).
//
// Deprecated: use report.KernelRow.
type KernelRow = report.KernelRow

// KernelRepresentativeness computes, per benchmark, how well the refrate
// workload (the kernel source) represents the full workload set.
//
// Deprecated: use report.Kernels, which takes the benchmark order
// explicitly so several builders can share one sort.
func KernelRepresentativeness(results SuiteResults) ([]report.KernelRow, error) {
	return report.Kernels(results, results.SortedBenchmarks())
}

// FormatKernelRows renders the analysis.
//
// Deprecated: use report.FormatKernelRows.
func FormatKernelRows(rows []report.KernelRow) string { return report.FormatKernelRows(rows) }
