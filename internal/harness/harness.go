// Package harness runs the characterization experiments of Section V: the
// benchmark × workload × repetition matrix, the Table I and Table II
// summaries, and the per-workload series behind Figures 1 and 2.
package harness

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/stats"
)

// Options configure a characterization run.
type Options struct {
	// Reps is the number of executions per workload; the paper used
	// three. Modeled measurements are deterministic, so repetitions serve
	// as a determinism check and wall-time averaging.
	Reps int
	// Stride sub-samples profiler event simulation (1 = exact).
	Stride int
	// IncludeTest keeps the SPEC test inputs (excluded by default, as in
	// the paper).
	IncludeTest bool
}

// DefaultOptions mirror the paper's methodology.
func DefaultOptions() Options { return Options{Reps: 3, Stride: 1} }

// Measurement is the summarized observation of one workload (over reps).
type Measurement struct {
	Benchmark string
	Workload  string
	Kind      core.Kind
	Checksum  uint64
	TopDown   stats.TopDown
	Coverage  stats.Coverage
	Cycles    uint64
	// ModeledSeconds is cycles at the modeled 3.4 GHz clock.
	ModeledSeconds float64
	// WallSeconds is the mean wall-clock run time of the repetitions.
	WallSeconds float64
}

// RunWorkload executes one benchmark/workload pair opts.Reps times.
func RunWorkload(b core.Benchmark, w core.Workload, opts Options) (Measurement, error) {
	if opts.Reps < 1 {
		opts.Reps = 1
	}
	var m Measurement
	for rep := 0; rep < opts.Reps; rep++ {
		p := perf.NewWithOptions(perf.Options{Stride: opts.Stride})
		start := time.Now()
		res, err := b.Run(w, p)
		if err != nil {
			return Measurement{}, fmt.Errorf("harness: %s/%s rep %d: %w", b.Name(), w.WorkloadName(), rep, err)
		}
		wall := time.Since(start).Seconds()
		rep := p.Report()
		if m.Checksum == 0 {
			m = Measurement{
				Benchmark: b.Name(),
				Workload:  w.WorkloadName(),
				Kind:      w.WorkloadKind(),
				Checksum:  res.Checksum,
				TopDown:   rep.TopDown,
				Coverage:  rep.Coverage,
				Cycles:    rep.Cycles,
			}
			m.ModeledSeconds = perf.ModeledSeconds(rep.Cycles)
		} else if m.Checksum != res.Checksum {
			return Measurement{}, fmt.Errorf("harness: %s/%s: nondeterministic checksum across repetitions",
				b.Name(), w.WorkloadName())
		}
		m.WallSeconds += wall
	}
	m.WallSeconds /= float64(opts.Reps)
	return m, nil
}

// RunBenchmark measures every (measurement) workload of b.
func RunBenchmark(b core.Benchmark, opts Options) ([]Measurement, error) {
	var ws []core.Workload
	var err error
	if opts.IncludeTest {
		ws, err = b.Workloads()
	} else {
		ws, err = core.MeasurementWorkloads(b)
	}
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", b.Name(), err)
	}
	out := make([]Measurement, 0, len(ws))
	for _, w := range ws {
		m, err := RunWorkload(b, w, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// SuiteResults maps benchmark name to its per-workload measurements.
type SuiteResults map[string][]Measurement

// RunSuite measures every benchmark of the suite.
func RunSuite(s *core.Suite, opts Options) (SuiteResults, error) {
	res := SuiteResults{}
	for _, b := range s.Benchmarks() {
		ms, err := RunBenchmark(b, opts)
		if err != nil {
			return nil, err
		}
		res[b.Name()] = ms
	}
	return res, nil
}

// refrateOf finds the refrate measurement in a benchmark's list.
func refrateOf(ms []Measurement) (Measurement, bool) {
	for _, m := range ms {
		if m.Kind == core.KindRefrate {
			return m, true
		}
	}
	return Measurement{}, false
}

// SortedBenchmarks returns the result keys in name order.
func (r SuiteResults) SortedBenchmarks() []string {
	names := make([]string, 0, len(r))
	for n := range r {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
