// Package harness runs the characterization experiments of Section V: the
// benchmark × workload × repetition matrix, the Table I and Table II
// summaries, and the per-workload series behind Figures 1 and 2.
//
// The matrix is executed by a Runner, which fans (benchmark, workload)
// pairs out over a bounded worker pool and assembles results in
// deterministic inventory order regardless of scheduling. RunSuite,
// RunBenchmark and RunWorkload are thin convenience wrappers over the
// Runner.
package harness

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/stats"
)

// Options configure a characterization run.
type Options struct {
	// Reps is the number of executions per workload; the paper used
	// three. Modeled measurements are deterministic, so repetitions serve
	// as a determinism check and wall-time averaging.
	Reps int
	// Stride sub-samples profiler event simulation (1 = exact).
	Stride int
	// IncludeTest keeps the SPEC test inputs (excluded by default, as in
	// the paper).
	IncludeTest bool
	// Reference runs the profiler's retained pre-optimization event path
	// (see perf.Options.Reference). Measurements are bit-identical to the
	// optimized path except WallSeconds; the option exists for differential
	// testing and for the tracked benchmark baseline.
	Reference bool
	// Workers bounds the number of (benchmark, workload) measurements in
	// flight at once. Zero or negative means runtime.GOMAXPROCS(0);
	// Workers = 1 reproduces the serial path. Every measurement uses its
	// own perf.Profiler, so any worker count yields bit-identical results
	// except for the WallSeconds field.
	Workers int
	// FailFast cancels outstanding work on the first measurement error
	// and returns that error alone. When false, the run continues past
	// failures and reports them all in a *RunError alongside the partial
	// results.
	FailFast bool
	// Progress, when non-nil, receives an Event as each workload
	// measurement starts and finishes. The Runner serializes calls, so
	// the callback needs no locking of its own.
	Progress func(Event)
}

// DefaultOptions mirror the paper's methodology.
func DefaultOptions() Options { return Options{Reps: 3, Stride: 1} }

// Measurement is the summarized observation of one workload (over reps).
type Measurement struct {
	Benchmark string         `json:"benchmark"`
	Workload  string         `json:"workload"`
	Kind      core.Kind      `json:"kind"`
	Checksum  uint64         `json:"checksum"`
	TopDown   stats.TopDown  `json:"top_down"`
	Coverage  stats.Coverage `json:"coverage"`
	Cycles    uint64         `json:"cycles"`
	// ModeledSeconds is cycles at the modeled 3.4 GHz clock.
	ModeledSeconds float64 `json:"modeled_seconds"`
	// WallSeconds is the mean wall-clock run time of the repetitions. It
	// is the only field that may differ between runs (and between worker
	// counts); everything else is deterministic.
	WallSeconds float64 `json:"wall_seconds"`
}

// RunWorkload executes one benchmark/workload pair opts.Reps times.
//
// When the benchmark implements core.Preparer, the workload's input is
// prepared exactly once — uninstrumented, before the first repetition —
// and the prepared handle is reused by every repetition, which resets its
// mutable scratch in place (core.PreparedWorkload's contract). Repetitions
// 1..N-1 therefore do zero input rework, and WallSeconds times only the
// measured execute phase. Every Measurement field except WallSeconds is
// bit-identical to running the benchmark cold each repetition.
//
// The context is checked between repetitions; a benchmark's execute phase
// itself is not interruptible.
func RunWorkload(ctx context.Context, b core.Benchmark, w core.Workload, opts Options) (Measurement, error) {
	if opts.Reps < 1 {
		opts.Reps = 1
	}
	return runWorkload(ctx, b, w, opts,
		perf.NewWithOptions(perf.Options{Stride: opts.Stride, Reference: opts.Reference}))
}

// runWorkload is RunWorkload on a caller-supplied profiler, which must be
// freshly constructed or Reset. The Runner's workers recycle one profiler
// each across all their cells through it, so a whole suite run constructs
// Workers profilers instead of one per cell.
func runWorkload(ctx context.Context, b core.Benchmark, w core.Workload, opts Options, p *perf.Profiler) (Measurement, error) {
	if opts.Reps < 1 {
		opts.Reps = 1
	}
	var m Measurement
	pw, err := core.PrepareOrRun(b, w)
	if err != nil {
		return Measurement{}, fmt.Errorf("harness: %s/%s: prepare: %w", b.Name(), w.WorkloadName(), err)
	}
	// One profiler serves all repetitions: Reset recycles the
	// just-constructed state — clearing method records and simulators in
	// place — without reallocating the multi-megabyte modeled hierarchy,
	// and reuse does not weaken the determinism check below: a Reset
	// profiler must reproduce the first rep's Report exactly, which perf's
	// own tests assert.
	for rep := 0; rep < opts.Reps; rep++ {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		if rep > 0 {
			p.Reset()
		}
		start := time.Now()
		res, err := pw.Execute(p)
		if err != nil {
			return Measurement{}, fmt.Errorf("harness: %s/%s rep %d: %w", b.Name(), w.WorkloadName(), rep, err)
		}
		wall := time.Since(start).Seconds()
		report := p.Report()
		if rep == 0 {
			m = Measurement{
				Benchmark: b.Name(),
				Workload:  w.WorkloadName(),
				Kind:      w.WorkloadKind(),
				Checksum:  res.Checksum,
				TopDown:   report.TopDown,
				Coverage:  report.Coverage,
				Cycles:    report.Cycles,
			}
			m.ModeledSeconds = perf.ModeledSeconds(report.Cycles)
		} else if m.Checksum != res.Checksum {
			return Measurement{}, fmt.Errorf("harness: %s/%s: nondeterministic checksum across repetitions",
				b.Name(), w.WorkloadName())
		} else if m.Cycles != report.Cycles || m.TopDown != report.TopDown {
			return Measurement{}, fmt.Errorf("harness: %s/%s: nondeterministic profile across repetitions",
				b.Name(), w.WorkloadName())
		}
		m.WallSeconds += wall
	}
	m.WallSeconds /= float64(opts.Reps)
	return m, nil
}

// measurementInventory returns b's workloads under the Options' test-input
// policy.
func measurementInventory(b core.Benchmark, opts Options) ([]core.Workload, error) {
	var ws []core.Workload
	var err error
	if opts.IncludeTest {
		ws, err = b.Workloads()
	} else {
		ws, err = core.MeasurementWorkloads(b)
	}
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", b.Name(), err)
	}
	return ws, nil
}

// RunBenchmark measures every (measurement) workload of b. It is a thin
// wrapper over a single-benchmark Runner.
func RunBenchmark(ctx context.Context, b core.Benchmark, opts Options) ([]Measurement, error) {
	s, err := core.NewSuite(b)
	if err != nil {
		return nil, err
	}
	res, err := NewRunner(s, opts).Run(ctx)
	if err != nil {
		return nil, err
	}
	return res[b.Name()], nil
}

// SuiteResults maps benchmark name to its per-workload measurements.
type SuiteResults map[string][]Measurement

// RunSuite measures every benchmark of the suite. It is a thin wrapper
// over NewRunner(s, opts).Run(ctx).
func RunSuite(ctx context.Context, s *core.Suite, opts Options) (SuiteResults, error) {
	return NewRunner(s, opts).Run(ctx)
}

// refrateOf finds the refrate measurement in a benchmark's list.
func refrateOf(ms []Measurement) (Measurement, bool) {
	for _, m := range ms {
		if m.Kind == core.KindRefrate {
			return m, true
		}
	}
	return Measurement{}, false
}

// SortedBenchmarks returns the result keys in name order.
func (r SuiteResults) SortedBenchmarks() []string {
	names := make([]string, 0, len(r))
	for n := range r {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
