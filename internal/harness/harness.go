// Package harness runs the characterization experiments of Section V: the
// benchmark × workload × repetition matrix, the Table I and Table II
// summaries, and the per-workload series behind Figures 1 and 2.
//
// The matrix is executed by a Runner, which fans (benchmark, workload)
// pairs out over a bounded worker pool and assembles results in
// deterministic inventory order regardless of scheduling. RunSuite,
// RunBenchmark and RunWorkload are thin convenience wrappers over the
// Runner.
//
// Result data types live in the internal/harness/report package, which
// defines the versioned JSON envelope (report.Suite, schema_version 1)
// shared by every result frontend. This package exports only the run
// surface — Options, Runner, RunSuite/RunBenchmark/RunWorkload and the
// progress Event contract; the historical aliases over report types were
// removed after their one-release deprecation window.
package harness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harness/report"
	"repro/internal/perf"
	"repro/internal/phase"
)

// Options configure a characterization run.
//
// The zero value is not directly runnable: Normalize maps it to the
// paper's defaults and validates the rest. RunWorkload and Runner.Run
// normalize internally, so callers only call Normalize themselves when
// they need the defaulted values (for cache keys, envelopes, or error
// reporting before a run starts).
type Options struct {
	// Reps is the number of executions per workload; the paper used
	// three, and Normalize defaults zero to three. Modeled measurements
	// are deterministic, so repetitions serve as a determinism check and
	// wall-time averaging.
	Reps int
	// Stride sub-samples profiler event simulation (1 = exact; Normalize
	// defaults zero to 1).
	Stride int
	// IncludeTest keeps the SPEC test inputs (excluded by default, as in
	// the paper).
	IncludeTest bool
	// Reference runs the profiler's retained pre-optimization event path
	// (see perf.Options.Reference). Measurements are bit-identical to the
	// optimized path except WallSeconds; the option exists for differential
	// testing and for the tracked benchmark baseline.
	Reference bool
	// Workers bounds the number of (benchmark, workload) measurements in
	// flight at once. Zero or negative means runtime.GOMAXPROCS(0);
	// Workers = 1 reproduces the serial path. Every measurement uses its
	// own perf.Profiler, so any worker count yields bit-identical results
	// except for the WallSeconds field.
	Workers int
	// Sampled switches workload measurement to phase-sampled simulation:
	// a profile pass slices the event stream into fixed-size instruction
	// intervals and fingerprints each, k-medoids clustering picks
	// representative intervals, a warm pass checkpoints simulator state at
	// the plan's restore points, and the measure passes fully simulate only
	// the representatives, extrapolating probe-derived counters by cluster
	// weight. Architectural counters and checksums stay exact. Incompatible
	// with Reference and with Stride > 1.
	Sampled bool
	// SampledInterval is the sampled-mode profiling interval in retired
	// ops; Normalize defaults zero to perf.DefaultSampleInterval.
	SampledInterval uint64
	// SampledPhases is the sampled-mode cluster count k; Normalize
	// defaults zero to phase.DefaultPhases.
	SampledPhases int
	// FailFast cancels outstanding work on the first measurement error
	// and returns that error alone. When false, the run continues past
	// failures and reports them all in a *RunError alongside the partial
	// results.
	FailFast bool
	// Progress, when non-nil, receives an Event as each workload
	// measurement starts and finishes. The Runner serializes calls, so
	// the callback needs no locking of its own.
	Progress func(Event)
}

// DefaultOptions mirror the paper's methodology. They are exactly the
// normalized zero Options.
func DefaultOptions() Options { return Options{Reps: 3, Stride: 1} }

// Normalize is the single place run options are defaulted and validated:
// zero Reps becomes the paper's three repetitions, zero Stride becomes
// exact simulation, negative Workers becomes the GOMAXPROCS sentinel
// zero, and negative Reps or Stride are rejected. Every run entry point
// (RunWorkload, Runner.Run, albertarun, albertad) goes through it, so
// there is no flag-side duplicate of these rules.
func (o Options) Normalize() (Options, error) {
	if o.Reps < 0 {
		return o, fmt.Errorf("harness: reps must be >= 1 (got %d)", o.Reps)
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.Stride < 0 {
		return o, fmt.Errorf("harness: stride must be >= 1 (got %d)", o.Stride)
	}
	if o.Stride == 0 {
		o.Stride = 1
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	if !o.Sampled {
		if o.SampledInterval != 0 || o.SampledPhases != 0 {
			return o, fmt.Errorf("harness: sampled interval/phases require sampled mode")
		}
		return o, nil
	}
	if o.Reference {
		return o, fmt.Errorf("harness: sampled mode is incompatible with the reference event path")
	}
	if o.Stride > 1 {
		return o, fmt.Errorf("harness: sampled mode is incompatible with stride %d (sampling already sub-samples)", o.Stride)
	}
	if o.SampledPhases < 0 {
		return o, fmt.Errorf("harness: sampled phases must be >= 1 (got %d)", o.SampledPhases)
	}
	if o.SampledInterval == 0 {
		o.SampledInterval = perf.DefaultSampleInterval
	}
	if o.SampledPhases == 0 {
		o.SampledPhases = phase.DefaultPhases
	}
	return o, nil
}

// ReportConfig extracts the result-affecting option subset recorded in
// report.Suite envelopes and used for cache key derivation. Call it on
// normalized Options.
func (o Options) ReportConfig() report.RunConfig {
	cfg := report.RunConfig{
		Reps:        o.Reps,
		Stride:      o.Stride,
		IncludeTest: o.IncludeTest,
		Reference:   o.Reference,
	}
	if o.Sampled {
		cfg.Sampled = true
		cfg.SampledInterval = o.SampledInterval
		cfg.SampledPhases = o.SampledPhases
	}
	return cfg
}

// RunWorkload executes one benchmark/workload pair opts.Reps times.
//
// When the benchmark implements core.Preparer, the workload's input is
// prepared exactly once — uninstrumented, before the first repetition —
// and the prepared handle is reused by every repetition, which resets its
// mutable scratch in place (core.PreparedWorkload's contract). Repetitions
// 1..N-1 therefore do zero input rework, and WallSeconds times only the
// measured execute phase. Every Measurement field except WallSeconds is
// bit-identical to running the benchmark cold each repetition.
//
// The context is checked between repetitions; a benchmark's execute phase
// itself is not interruptible.
func RunWorkload(ctx context.Context, b core.Benchmark, w core.Workload, opts Options) (report.Measurement, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return report.Measurement{}, err
	}
	return runWorkload(ctx, b, w, opts,
		perf.NewWithOptions(perf.Options{Stride: opts.Stride, Reference: opts.Reference}))
}

// runWorkload is RunWorkload on a caller-supplied profiler, which must be
// freshly constructed or Reset, and normalized Options. The Runner's
// workers recycle one profiler each across all their cells through it, so
// a whole suite run constructs Workers profilers instead of one per cell.
func runWorkload(ctx context.Context, b core.Benchmark, w core.Workload, opts Options, p *perf.Profiler) (report.Measurement, error) {
	var m report.Measurement
	pw, err := core.PrepareOrRun(b, w)
	if err != nil {
		return report.Measurement{}, fmt.Errorf("harness: %s/%s: prepare: %w", b.Name(), w.WorkloadName(), err)
	}
	if opts.Sampled {
		return runWorkloadSampled(ctx, b, w, opts, p, pw)
	}
	// One profiler serves all repetitions: Reset recycles the
	// just-constructed state — clearing method records and simulators in
	// place — without reallocating the multi-megabyte modeled hierarchy,
	// and reuse does not weaken the determinism check below: a Reset
	// profiler must reproduce the first rep's Report exactly, which perf's
	// own tests assert.
	for rep := 0; rep < opts.Reps; rep++ {
		if err := ctx.Err(); err != nil {
			return report.Measurement{}, err
		}
		if rep > 0 {
			p.Reset()
		}
		start := time.Now()
		res, err := pw.Execute(p)
		if err != nil {
			return report.Measurement{}, fmt.Errorf("harness: %s/%s rep %d: %w", b.Name(), w.WorkloadName(), rep, err)
		}
		wall := time.Since(start).Seconds()
		rpt := p.Report()
		if rep == 0 {
			m = report.Measurement{
				Benchmark: b.Name(),
				Workload:  w.WorkloadName(),
				Kind:      w.WorkloadKind(),
				Checksum:  res.Checksum,
				TopDown:   rpt.TopDown,
				Coverage:  rpt.Coverage,
				Cycles:    rpt.Cycles,
			}
			m.ModeledSeconds = perf.ModeledSeconds(rpt.Cycles)
		} else if m.Checksum != res.Checksum {
			return report.Measurement{}, fmt.Errorf("harness: %s/%s: nondeterministic checksum across repetitions",
				b.Name(), w.WorkloadName())
		} else if m.Cycles != rpt.Cycles || m.TopDown != rpt.TopDown {
			return report.Measurement{}, fmt.Errorf("harness: %s/%s: nondeterministic profile across repetitions",
				b.Name(), w.WorkloadName())
		}
		m.WallSeconds += wall
	}
	m.WallSeconds /= float64(opts.Reps)
	return m, nil
}

// measurementInventory returns b's workloads under the Options' test-input
// policy.
func measurementInventory(b core.Benchmark, opts Options) ([]core.Workload, error) {
	var ws []core.Workload
	var err error
	if opts.IncludeTest {
		ws, err = b.Workloads()
	} else {
		ws, err = core.MeasurementWorkloads(b)
	}
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", b.Name(), err)
	}
	return ws, nil
}

// RunBenchmark measures every (measurement) workload of b. It is a thin
// wrapper over a single-benchmark Runner.
func RunBenchmark(ctx context.Context, b core.Benchmark, opts Options) ([]report.Measurement, error) {
	s, err := core.NewSuite(b)
	if err != nil {
		return nil, err
	}
	res, err := NewRunner(s, opts).Run(ctx)
	if err != nil {
		return nil, err
	}
	return res[b.Name()], nil
}

// RunSuite measures every benchmark of the suite. It is a thin wrapper
// over NewRunner(s, opts).Run(ctx).
func RunSuite(ctx context.Context, s *core.Suite, opts Options) (report.Results, error) {
	return NewRunner(s, opts).Run(ctx)
}
