package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/benchmarks/xz"
	"repro/internal/core"
	"repro/internal/harness/report"
	"repro/internal/perf"
	"repro/internal/stats"
)

// quickBench is a tiny deterministic benchmark for harness tests.
type quickBench struct{ name string }

func (q *quickBench) Name() string { return q.name }
func (q *quickBench) Area() string { return "testing" }
func (q *quickBench) Workloads() ([]core.Workload, error) {
	return []core.Workload{
		core.Meta{Name: "test", Kind: core.KindTest},
		core.Meta{Name: "train", Kind: core.KindTrain},
		core.Meta{Name: "refrate", Kind: core.KindRefrate},
		core.Meta{Name: "alberta.a", Kind: core.KindAlberta},
		core.Meta{Name: "alberta.b", Kind: core.KindAlberta},
	}, nil
}

func (q *quickBench) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	// Workload-dependent behaviour so Table II has variation.
	n := uint64(len(w.WorkloadName())) * 500
	p.Do("alpha", func() {
		for i := uint64(0); i < n; i++ {
			p.Ops(4)
			p.Branch(1, i%3 == 0)
			p.Load(i * 64 % (1 << 18))
		}
	})
	p.Do("beta", func() { p.Ops(n * uint64(len(w.WorkloadName())) % 9000) })
	sum := core.NewChecksum().AddString(w.WorkloadName())
	return core.Result{
		Benchmark: q.name, Workload: w.WorkloadName(),
		Kind: w.WorkloadKind(), Checksum: sum.Value(),
	}, nil
}

func quickOpts() Options { return Options{Reps: 2, Stride: 1} }

func TestRunWorkloadRepetitionsAgree(t *testing.T) {
	b := &quickBench{name: "900.quick_r"}
	w, err := core.FindWorkload(b, "refrate")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunWorkload(context.Background(), b, w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if m.Checksum == 0 || m.Cycles == 0 {
		t.Errorf("empty measurement: %+v", m)
	}
	if m.TopDown.Sum() < 0.99 {
		t.Errorf("topdown sum = %v", m.TopDown.Sum())
	}
}

func TestRunBenchmarkExcludesTestByDefault(t *testing.T) {
	b := &quickBench{name: "900.quick_r"}
	ms, err := RunBenchmark(context.Background(), b, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("measurements = %d, want 4 (test excluded)", len(ms))
	}
	for _, m := range ms {
		if m.Kind == core.KindTest {
			t.Error("test workload leaked into measurements")
		}
	}
	withTest := quickOpts()
	withTest.IncludeTest = true
	ms, err = RunBenchmark(context.Background(), b, withTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Errorf("with test: %d, want 5", len(ms))
	}
}

func TestRunSuiteAndTableII(t *testing.T) {
	s, err := core.NewSuite(&quickBench{name: "900.quick_r"}, &quickBench{name: "901.fast_r"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSuite(context.Background(), s, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := report.TableII(res, res.SortedBenchmarks())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Workloads != 4 {
			t.Errorf("%s workloads = %d, want 4", r.Benchmark, r.Workloads)
		}
		if r.TopDown.Score <= 0 || r.Coverage.Score <= 0 {
			t.Errorf("%s scores = %v/%v", r.Benchmark, r.TopDown.Score, r.Coverage.Score)
		}
		if r.RefrateTimeS <= 0 {
			t.Errorf("%s refrate time missing", r.Benchmark)
		}
	}
	text := report.FormatTableII(rows)
	if !strings.Contains(text, "900.quick_r") || !strings.Contains(text, "μg(V)") {
		t.Errorf("formatted table missing content:\n%s", text)
	}
}

func TestTableIIncludesPaperAndMeasured(t *testing.T) {
	res := report.Results{
		"505.mcf_r": {{
			Benchmark: "505.mcf_r", Workload: "refrate", Kind: core.KindRefrate,
			ModeledSeconds: 0.5,
			TopDown:        stats.TopDown{FrontEnd: 0.1, BackEnd: 0.4, BadSpec: 0.1, Retiring: 0.4},
		}},
	}
	rows := report.TableI(res)
	if len(rows) != len(report.PaperTableI) {
		t.Fatalf("rows = %d", len(rows))
	}
	var mcf report.TableIRow
	for _, r := range rows {
		if r.Name == "505.mcf_r" {
			mcf = r
		}
	}
	if mcf.Paper2017 != 633 || mcf.Paper2006 != 333 || mcf.MeasuredS != 0.5 {
		t.Errorf("mcf row = %+v", mcf)
	}
	text := report.FormatTableI(rows)
	if !strings.Contains(text, "Route planning") || !strings.Contains(text, "Arithmetic Average") {
		t.Errorf("table I formatting:\n%s", text)
	}
}

func TestFigure1Extraction(t *testing.T) {
	s, err := core.NewSuite(&quickBench{name: "900.quick_r"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSuite(context.Background(), s, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	series, err := report.Figure1(res, "900.quick_r")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Workloads) != 4 {
		t.Fatalf("series = %+v", series)
	}
	if _, err := report.Figure1(res, "no.such_r"); err == nil {
		t.Error("missing benchmark should error")
	}
	text := report.FormatFigure1(series)
	if !strings.Contains(text, "backend") {
		t.Errorf("figure 1 formatting:\n%s", text)
	}
}

func TestFigure2Extraction(t *testing.T) {
	s, err := core.NewSuite(&quickBench{name: "900.quick_r"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSuite(context.Background(), s, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	series, err := report.Figure2(res, 3, "900.quick_r")
	if err != nil {
		t.Fatal(err)
	}
	cs := series[0]
	if cs.Methods[len(cs.Methods)-1] != "others" {
		t.Error("last method should be others")
	}
	// Each workload row must sum to ~1.
	for i, row := range cs.Values {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("workload %s coverage sums to %v", cs.Workloads[i], sum)
		}
	}
	text := report.FormatFigure2(series)
	if !strings.Contains(text, "alpha") {
		t.Errorf("figure 2 formatting:\n%s", text)
	}
}

func TestKindBreakdown(t *testing.T) {
	ms := []report.Measurement{
		{Kind: core.KindTrain}, {Kind: core.KindRefrate},
		{Kind: core.KindAlberta}, {Kind: core.KindAlberta},
	}
	bd := report.KindBreakdown(ms)
	if bd[core.KindAlberta] != 2 || bd[core.KindTrain] != 1 {
		t.Errorf("breakdown = %v", bd)
	}
}

func TestRealBenchmarkThroughHarness(t *testing.T) {
	// End-to-end smoke: the xz benchmark through the full harness with
	// stride sampling for speed.
	b := xz.New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunWorkload(context.Background(), b, w, Options{Reps: 2, Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles == 0 || len(m.Coverage) == 0 {
		t.Errorf("measurement = %+v", m)
	}
}

func TestBenchmarkReport(t *testing.T) {
	b := &quickBench{name: "900.quick_r"}
	ms, err := RunBenchmark(context.Background(), b, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	text := report.BenchmarkReport(b.Name(), ms)
	for _, want := range []string{
		"Benchmark report: 900.quick_r",
		"Execution time per workload",
		"Top-down classification",
		"Hottest methods",
		"refrate",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	// The longest-running workload must have the longest bar.
	if !strings.Contains(text, "#") {
		t.Error("no bars rendered")
	}
}

func TestKernelRepresentativeness(t *testing.T) {
	mk := func(w string, kind core.Kind, f, b float64) report.Measurement {
		return report.Measurement{
			Workload: w, Kind: kind,
			TopDown: stats.TopDown{FrontEnd: f, BackEnd: b, BadSpec: 0.1, Retiring: 0.9 - f - b - 0.1 + 0.1},
		}
	}
	res := report.Results{
		// homogeneous: every workload close to refrate.
		"901.same_r": {
			mk("refrate", core.KindRefrate, 0.10, 0.40),
			mk("alberta.a", core.KindAlberta, 0.11, 0.41),
			mk("alberta.b", core.KindAlberta, 0.09, 0.39),
		},
		// heterogeneous: one workload far from refrate.
		"902.vary_r": {
			mk("refrate", core.KindRefrate, 0.10, 0.40),
			mk("alberta.a", core.KindAlberta, 0.10, 0.41),
			mk("alberta.far", core.KindAlberta, 0.40, 0.10),
		},
	}
	rows, err := report.Kernels(res, res.SortedBenchmarks())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// vary must rank first (largest max distance) and name the far
	// workload.
	if rows[0].Benchmark != "902.vary_r" || rows[0].WorstWorkload != "alberta.far" {
		t.Errorf("ranking wrong: %+v", rows[0])
	}
	if rows[0].MaxDistance <= rows[1].MaxDistance {
		t.Error("heterogeneous benchmark should have larger max distance")
	}
	text := report.FormatKernelRows(rows)
	if !strings.Contains(text, "902.vary_r") || !strings.Contains(text, "max-dist") {
		t.Errorf("format:\n%s", text)
	}
}

func TestKernelRepresentativenessRequiresRefrate(t *testing.T) {
	res := report.Results{"903.noref_r": {{Workload: "train", Kind: core.KindTrain}}}
	if _, err := report.Kernels(res, res.SortedBenchmarks()); err == nil {
		t.Error("missing refrate should error")
	}
}
