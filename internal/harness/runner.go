package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/harness/report"
	"repro/internal/perf"
)

// EventKind classifies a progress Event.
type EventKind int

const (
	// EventWorkloadStart fires when a worker picks up a (benchmark,
	// workload) pair.
	EventWorkloadStart EventKind = iota
	// EventWorkloadDone fires when a measurement completes successfully.
	EventWorkloadDone
	// EventWorkloadError fires when a measurement fails.
	EventWorkloadError
)

// String returns a short label for the kind.
func (k EventKind) String() string {
	switch k {
	case EventWorkloadStart:
		return "start"
	case EventWorkloadDone:
		return "done"
	case EventWorkloadError:
		return "error"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one progress notification from a Runner. Events for the same
// run are delivered serially.
type Event struct {
	Kind      EventKind
	Benchmark string
	Workload  string
	// Err is set on EventWorkloadError.
	Err error
	// Completed counts measurements finished (done or failed) at the
	// moment the event fires. An EventWorkloadStart therefore does NOT
	// count its own cell — the cell has only started — while the
	// EventWorkloadDone/EventWorkloadError for the same cell does. Under a
	// serial run (Workers = 1) the sequence is 0, 1, 1, 2, 2, …, N-1, N;
	// the final terminal event of any run reports Completed == Total.
	// Total is the size of the (benchmark, workload) matrix.
	Completed int
	Total     int
}

// WorkloadError records one failed measurement inside a RunError.
type WorkloadError struct {
	Benchmark string
	Workload  string
	Err       error
}

// Error implements error.
func (e *WorkloadError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying measurement error.
func (e *WorkloadError) Unwrap() error { return e.Err }

// RunError aggregates the per-workload failures of a run executed with
// FailFast off. Failures are ordered by suite inventory position
// (benchmark name order, then workload order), not by completion time.
type RunError struct {
	Failures []*WorkloadError
}

// Error implements error, summarizing up to three failures.
func (e *RunError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "harness: %d of the measurements failed: ", len(e.Failures))
	for i, f := range e.Failures {
		if i == 3 {
			fmt.Fprintf(&sb, "; and %d more", len(e.Failures)-i)
			break
		}
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(f.Error())
	}
	return sb.String()
}

// Unwrap exposes the individual failures to errors.Is / errors.As.
func (e *RunError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f
	}
	return errs
}

// Unit is one cell of a run plan: a benchmark and one of its workloads.
// A plan built from a suite enumerates the benchmark × workload matrix in
// inventory order; NewPlanRunner accepts an explicit plan — including
// generated workloads that appear in no inventory.
type Unit struct {
	Benchmark core.Benchmark
	Workload  core.Workload
}

// Cell identifies one completed plan position in a Sink delivery.
type Cell struct {
	// Index is the cell's position in the plan; Total the plan size.
	// Deliveries arrive in completion order, so Index does not increase
	// monotonically under Workers > 1 — consumers that need plan order
	// key their state by Index.
	Index int
	Total int
	// Benchmark and Workload name the cell.
	Benchmark string
	Workload  string
}

// Sink consumes completed measurements one at a time, in completion
// order. The Runner serializes calls — a Sink needs no locking of its own
// — and releases each Measurement after the call returns, so a sweep
// holds at most O(Workers) Measurements regardless of plan size. A Sink
// that retains only what it needs (a feature vector, a summary row)
// keeps the whole run allocation-bounded. Returning a non-nil error
// cancels the run; the Sink is not called again and Stream returns the
// error.
type Sink func(Cell, report.Measurement) error

// Runner executes a run plan — a suite's benchmark × workload matrix or
// an explicit Unit list — over a bounded worker pool. Each worker owns
// one perf.Profiler and recycles it across its cells via Reset; no
// profiler state flows between measurements, so results are bit-identical
// across worker counts except for WallSeconds.
type Runner struct {
	suite *core.Suite
	units []Unit // explicit plan when suite is nil
	opts  Options
}

// NewRunner builds a Runner over the suite's benchmark × workload matrix
// in inventory order.
func NewRunner(s *core.Suite, opts Options) *Runner {
	return &Runner{suite: s, opts: opts}
}

// NewPlanRunner builds a Runner over an explicit plan. The plan order is
// the cell Index order; IncludeTest has no effect (the plan already says
// exactly what runs).
func NewPlanRunner(units []Unit, opts Options) *Runner {
	return &Runner{units: units, opts: opts}
}

// plan enumerates the run's units. Inventory errors abort the run
// regardless of FailFast: they mean the suite itself is broken.
func (r *Runner) plan(opts Options) ([]Unit, error) {
	if r.suite == nil {
		return r.units, nil
	}
	var units []Unit
	for _, b := range r.suite.Benchmarks() {
		ws, err := measurementInventory(b, opts)
		if err != nil {
			return nil, err
		}
		for _, w := range ws {
			units = append(units, Unit{Benchmark: b, Workload: w})
		}
	}
	return units, nil
}

// Stream executes the plan, handing each completed cell's Measurement to
// sink and releasing it — the streaming path behind Run and the sweep
// drivers. Cancellation of ctx stops the run promptly (between
// measurements; a benchmark's Run is not interruptible) and returns
// ctx.Err(). A sink error cancels the run and is returned. With FailFast
// set, the first measurement error cancels the rest and is returned
// alone; otherwise all failures are collected into a *RunError, returned
// after every remaining cell has still been delivered to sink.
func (r *Runner) Stream(ctx context.Context, sink Sink) error {
	// Normalize once; workers below read the normalized copy only.
	opts, err := r.opts.Normalize()
	if err != nil {
		return err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	units, err := r.plan(opts)
	if err != nil {
		return err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Each unit writes only its own errs slot, so the slice needs no
	// lock; mu guards the shared progress counter and serializes both
	// Progress calls and sink deliveries.
	errs := make([]*WorkloadError, len(units))
	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		completed int
		firstErr  error // first failure by completion time (FailFast)
		sinkErr   error // first sink rejection; stops further deliveries
	)
	emit := func(e Event) {
		if opts.Progress != nil {
			opts.Progress(e)
		}
	}

	jobs := make(chan int)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			// Each worker owns one profiler for its whole share of the
			// matrix: Reset recycles it between cells, so a run constructs
			// `workers` profilers instead of one per cell. Recycling is
			// Report-invariant — a Reset profiler reproduces a fresh
			// profiler's Report exactly (perf's tests assert it), so
			// results stay bit-identical across worker counts except for
			// WallSeconds.
			var prof *perf.Profiler
			for idx := range jobs {
				u := units[idx]
				if runCtx.Err() != nil {
					continue // drain after cancellation
				}
				if prof == nil {
					prof = perf.NewWithOptions(perf.Options{Stride: opts.Stride, Reference: opts.Reference})
				} else {
					prof.Reset()
				}
				mu.Lock()
				emit(Event{Kind: EventWorkloadStart, Benchmark: u.Benchmark.Name(),
					Workload: u.Workload.WorkloadName(), Completed: completed, Total: len(units)})
				mu.Unlock()
				m, err := runWorkload(runCtx, u.Benchmark, u.Workload, opts, prof)
				mu.Lock()
				completed++
				switch {
				case err == nil:
					emit(Event{Kind: EventWorkloadDone, Benchmark: u.Benchmark.Name(),
						Workload: u.Workload.WorkloadName(), Completed: completed, Total: len(units)})
					// The measurement leaves the runner here: after sink
					// returns, no reference survives, so the live set is
					// bounded by the worker count.
					if sink != nil && sinkErr == nil {
						cell := Cell{Index: idx, Total: len(units),
							Benchmark: u.Benchmark.Name(), Workload: u.Workload.WorkloadName()}
						if serr := sink(cell, m); serr != nil {
							sinkErr = serr
							cancel()
						}
					}
				case runCtx.Err() != nil && errors.Is(err, runCtx.Err()):
					// The measurement was interrupted by cancellation
					// (parent context or a FailFast abort), not by a
					// failure of its own; leave the slot empty.
				default:
					errs[idx] = &WorkloadError{Benchmark: u.Benchmark.Name(), Workload: u.Workload.WorkloadName(), Err: err}
					if firstErr == nil {
						firstErr = err
					}
					emit(Event{Kind: EventWorkloadError, Benchmark: u.Benchmark.Name(),
						Workload: u.Workload.WorkloadName(), Err: err, Completed: completed, Total: len(units)})
					if opts.FailFast {
						cancel()
					}
				}
				mu.Unlock()
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range units {
			select {
			case jobs <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	if sinkErr != nil {
		return fmt.Errorf("harness: sink: %w", sinkErr)
	}

	// Collect failures in plan (inventory) order. Units that were never
	// run (drained after a FailFast cancellation) carry no error and are
	// simply absent.
	var failures []*WorkloadError
	for _, e := range errs {
		if e != nil {
			failures = append(failures, e)
		}
	}
	if len(failures) > 0 {
		if opts.FailFast {
			return firstErr
		}
		return &RunError{Failures: failures}
	}
	return nil
}

// Run executes the plan and retains every measurement, assembled into
// report.Results in plan (inventory) order regardless of scheduling. It
// is Stream with a collecting sink — sweeps that cannot afford O(cells)
// Measurements use Stream directly. With FailFast off, measurement
// failures return the successful partial results alongside a *RunError.
func (r *Runner) Run(ctx context.Context) (report.Results, error) {
	var (
		ms  []report.Measurement
		oks []bool
	)
	err := r.Stream(ctx, func(c Cell, m report.Measurement) error {
		if ms == nil {
			ms = make([]report.Measurement, c.Total)
			oks = make([]bool, c.Total)
		}
		ms[c.Index], oks[c.Index] = m, true
		return nil
	})
	if err != nil {
		var runErr *RunError
		if !errors.As(err, &runErr) {
			return nil, err
		}
	}
	res := report.Results{}
	for idx := range ms {
		if oks[idx] {
			res[ms[idx].Benchmark] = append(res[ms[idx].Benchmark], ms[idx])
		}
	}
	if err != nil {
		return res, err
	}
	return res, nil
}
