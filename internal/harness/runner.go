package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/harness/report"
	"repro/internal/perf"
)

// EventKind classifies a progress Event.
type EventKind int

const (
	// EventWorkloadStart fires when a worker picks up a (benchmark,
	// workload) pair.
	EventWorkloadStart EventKind = iota
	// EventWorkloadDone fires when a measurement completes successfully.
	EventWorkloadDone
	// EventWorkloadError fires when a measurement fails.
	EventWorkloadError
)

// String returns a short label for the kind.
func (k EventKind) String() string {
	switch k {
	case EventWorkloadStart:
		return "start"
	case EventWorkloadDone:
		return "done"
	case EventWorkloadError:
		return "error"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one progress notification from a Runner. Events for the same
// run are delivered serially.
type Event struct {
	Kind      EventKind
	Benchmark string
	Workload  string
	// Err is set on EventWorkloadError.
	Err error
	// Completed counts measurements finished (done or failed) at the
	// moment the event fires. An EventWorkloadStart therefore does NOT
	// count its own cell — the cell has only started — while the
	// EventWorkloadDone/EventWorkloadError for the same cell does. Under a
	// serial run (Workers = 1) the sequence is 0, 1, 1, 2, 2, …, N-1, N;
	// the final terminal event of any run reports Completed == Total.
	// Total is the size of the (benchmark, workload) matrix.
	Completed int
	Total     int
}

// WorkloadError records one failed measurement inside a RunError.
type WorkloadError struct {
	Benchmark string
	Workload  string
	Err       error
}

// Error implements error.
func (e *WorkloadError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying measurement error.
func (e *WorkloadError) Unwrap() error { return e.Err }

// RunError aggregates the per-workload failures of a run executed with
// FailFast off. Failures are ordered by suite inventory position
// (benchmark name order, then workload order), not by completion time.
type RunError struct {
	Failures []*WorkloadError
}

// Error implements error, summarizing up to three failures.
func (e *RunError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "harness: %d of the measurements failed: ", len(e.Failures))
	for i, f := range e.Failures {
		if i == 3 {
			fmt.Fprintf(&sb, "; and %d more", len(e.Failures)-i)
			break
		}
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(f.Error())
	}
	return sb.String()
}

// Unwrap exposes the individual failures to errors.Is / errors.As.
func (e *RunError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f
	}
	return errs
}

// Runner executes a suite's benchmark × workload matrix over a bounded
// worker pool. Each worker owns one perf.Profiler and recycles it across
// its cells via Reset; no profiler state flows between measurements, so
// results are bit-identical across worker counts except for WallSeconds.
// The returned report.Results always follow suite inventory order regardless
// of scheduling.
type Runner struct {
	suite *core.Suite
	opts  Options
}

// NewRunner builds a Runner for the suite with the given options.
func NewRunner(s *core.Suite, opts Options) *Runner {
	return &Runner{suite: s, opts: opts}
}

// unit is one cell of the benchmark × workload matrix.
type unit struct {
	bench core.Benchmark
	w     core.Workload
}

// Run executes the matrix. Cancellation of ctx stops the run promptly
// (between measurements; a benchmark's Run is not interruptible) and
// returns ctx.Err(). With FailFast set, the first measurement error
// cancels the rest and is returned alone; otherwise all failures are
// collected into a *RunError and returned together with the successful
// partial results.
func (r *Runner) Run(ctx context.Context) (report.Results, error) {
	// Normalize once; workers below read the normalized copy only.
	opts, err := r.opts.Normalize()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Enumerate the matrix in inventory order. Inventory errors abort the
	// run regardless of FailFast: they mean the suite itself is broken.
	var units []unit
	for _, b := range r.suite.Benchmarks() {
		ws, err := measurementInventory(b, opts)
		if err != nil {
			return nil, err
		}
		for _, w := range ws {
			units = append(units, unit{bench: b, w: w})
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Each unit writes only its own slot, so the slices need no lock; mu
	// guards the shared progress counter and serializes Progress calls.
	ms := make([]report.Measurement, len(units))
	oks := make([]bool, len(units))
	errs := make([]*WorkloadError, len(units))
	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		completed int
		firstErr  error // first failure by completion time (FailFast)
	)
	emit := func(e Event) {
		if opts.Progress != nil {
			opts.Progress(e)
		}
	}

	jobs := make(chan int)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			// Each worker owns one profiler for its whole share of the
			// matrix: Reset recycles it between cells, so a run constructs
			// `workers` profilers instead of one per cell. Recycling is
			// Report-invariant — a Reset profiler reproduces a fresh
			// profiler's Report exactly (perf's tests assert it), so
			// results stay bit-identical across worker counts except for
			// WallSeconds.
			var prof *perf.Profiler
			for idx := range jobs {
				u := units[idx]
				if runCtx.Err() != nil {
					continue // drain after cancellation
				}
				if prof == nil {
					prof = perf.NewWithOptions(perf.Options{Stride: opts.Stride, Reference: opts.Reference})
				} else {
					prof.Reset()
				}
				mu.Lock()
				emit(Event{Kind: EventWorkloadStart, Benchmark: u.bench.Name(),
					Workload: u.w.WorkloadName(), Completed: completed, Total: len(units)})
				mu.Unlock()
				m, err := runWorkload(runCtx, u.bench, u.w, opts, prof)
				mu.Lock()
				completed++
				switch {
				case err == nil:
					ms[idx], oks[idx] = m, true
					emit(Event{Kind: EventWorkloadDone, Benchmark: u.bench.Name(),
						Workload: u.w.WorkloadName(), Completed: completed, Total: len(units)})
				case runCtx.Err() != nil && errors.Is(err, runCtx.Err()):
					// The measurement was interrupted by cancellation
					// (parent context or a FailFast abort), not by a
					// failure of its own; leave the slot empty.
				default:
					errs[idx] = &WorkloadError{Benchmark: u.bench.Name(), Workload: u.w.WorkloadName(), Err: err}
					if firstErr == nil {
						firstErr = err
					}
					emit(Event{Kind: EventWorkloadError, Benchmark: u.bench.Name(),
						Workload: u.w.WorkloadName(), Err: err, Completed: completed, Total: len(units)})
					if opts.FailFast {
						cancel()
					}
				}
				mu.Unlock()
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range units {
			select {
			case jobs <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Assemble in inventory order, skipping failed slots. Units that were
	// never run (drained after a FailFast cancellation) carry neither a
	// measurement nor an error and are simply absent.
	res := report.Results{}
	var failures []*WorkloadError
	for idx, u := range units {
		switch {
		case errs[idx] != nil:
			failures = append(failures, errs[idx])
		case oks[idx]:
			res[u.bench.Name()] = append(res[u.bench.Name()], ms[idx])
		}
	}
	if len(failures) > 0 {
		if opts.FailFast {
			return nil, firstErr
		}
		return res, &RunError{Failures: failures}
	}
	return res, nil
}
