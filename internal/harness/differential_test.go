package harness

import (
	"context"
	"os"
	"reflect"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/perf"
)

// TestSuiteDifferentialReference replays benchmark workloads through the
// optimized event path and the retained pre-optimization reference path
// (Options.Reference) and requires bit-identical Measurements — the proof
// that the event-path rewrite changed no Report anywhere in the suite.
//
// By default every benchmark runs its test and train workloads, which keeps
// the sweep affordable on one core. Set ALBERTA_DIFF_FULL=1 (CI does, in a
// dedicated step) to sweep all 15 benchmarks × every workload, including
// refrate/refspeed and the Alberta inputs.
func TestSuiteDifferentialReference(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	full := os.Getenv("ALBERTA_DIFF_FULL") == "1"

	suite, err := benchmarks.Suite()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pairs := 0
	for _, b := range suite.Benchmarks() {
		ws, err := b.Workloads()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ws {
			if !full {
				if k := w.WorkloadKind(); k != core.KindTest && k != core.KindTrain {
					continue
				}
			}
			b, w := b, w
			pairs++
			t.Run(b.Name()+"/"+w.WorkloadName(), func(t *testing.T) {
				opt, err := RunWorkload(ctx, b, w, Options{Reps: 1, Stride: 1})
				if err != nil {
					t.Fatal(err)
				}
				ref, err := RunWorkload(ctx, b, w, Options{Reps: 1, Stride: 1, Reference: true})
				if err != nil {
					t.Fatal(err)
				}
				opt.WallSeconds, ref.WallSeconds = 0, 0
				if !reflect.DeepEqual(opt, ref) {
					t.Errorf("optimized measurement diverges from reference\noptimized: %+v\nreference: %+v", opt, ref)
				}
			})
		}
	}
	if pairs == 0 {
		t.Fatal("no workloads selected")
	}
}

// TestPreparedMatchesColdRuns is the prepared-workload acceptance sweep: a
// cell run through the harness — input prepared once, shared by several
// repetitions, profiler recycled with Reset between them — must produce a
// Measurement bit-identical (except WallSeconds) to a cold core.Benchmark.Run
// on a fresh profiler. Together with runWorkload's own cross-repetition
// determinism check this proves both prepared-vs-unprepared and
// recycled-vs-fresh equivalence for every benchmark.
//
// By default every benchmark runs its test and train workloads; set
// ALBERTA_DIFF_FULL=1 for the full matrix.
func TestPreparedMatchesColdRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	full := os.Getenv("ALBERTA_DIFF_FULL") == "1"

	suite, err := benchmarks.Suite()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pairs := 0
	for _, b := range suite.Benchmarks() {
		ws, err := b.Workloads()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := b.(core.Preparer); !ok {
			t.Errorf("%s does not implement core.Preparer", b.Name())
		}
		for _, w := range ws {
			if !full {
				if k := w.WorkloadKind(); k != core.KindTest && k != core.KindTrain {
					continue
				}
			}
			b, w := b, w
			pairs++
			t.Run(b.Name()+"/"+w.WorkloadName(), func(t *testing.T) {
				p := perf.NewWithOptions(perf.Options{Stride: 1})
				res, err := b.Run(w, p)
				if err != nil {
					t.Fatal(err)
				}
				report := p.Report()

				// Three repetitions share one prepared workload and one
				// Reset-recycled profiler; runWorkload's internal
				// determinism check requires every repetition to reproduce
				// the first one's checksum, cycles and top-down split, so
				// this also proves recycled prepared state (bytecode
				// scratches, VM arenas, compiled sheets) is bit-stable
				// across ≥3 consecutive Executes.
				m, err := RunWorkload(ctx, b, w, Options{Reps: 3, Stride: 1})
				if err != nil {
					t.Fatal(err)
				}
				if m.Checksum != res.Checksum {
					t.Errorf("checksum: prepared %x, cold %x", m.Checksum, res.Checksum)
				}
				if m.Cycles != report.Cycles {
					t.Errorf("cycles: prepared %d, cold %d", m.Cycles, report.Cycles)
				}
				if m.TopDown != report.TopDown {
					t.Errorf("topdown: prepared %+v, cold %+v", m.TopDown, report.TopDown)
				}
				if !reflect.DeepEqual(m.Coverage, report.Coverage) {
					t.Errorf("coverage: prepared %+v, cold %+v", m.Coverage, report.Coverage)
				}
			})
		}
	}
	if pairs == 0 {
		t.Fatal("no workloads selected")
	}
}

// TestCompiledEnginesRecycleFullReports drives the three bytecode-compiled
// interpreter benchmarks — perlbench, gcc and xalan — through one Prepare
// and four consecutive Executes each on fresh stride-1 profilers, and
// requires the complete perf.Report (methods, coverage, cycles, top-down,
// every counter) to be bit-identical run over run. This is a stronger
// per-Execute assertion than the harness sweep above, which compares the
// aggregate Measurement.
func TestCompiledEnginesRecycleFullReports(t *testing.T) {
	suite, err := benchmarks.Suite()
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string]bool{
		"500.perlbench_r": true, "502.gcc_r": true, "523.xalancbmk_r": true,
	}
	seen := 0
	for _, b := range suite.Benchmarks() {
		if !targets[b.Name()] {
			continue
		}
		seen++
		ws, err := b.Workloads()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ws {
			if w.WorkloadKind() != core.KindTest {
				continue
			}
			b, w := b, w
			t.Run(b.Name()+"/"+w.WorkloadName(), func(t *testing.T) {
				pw, err := core.PrepareOrRun(b, w)
				if err != nil {
					t.Fatal(err)
				}
				var first perf.Report
				var firstSum uint64
				for rep := 0; rep < 4; rep++ {
					p := perf.NewWithOptions(perf.Options{Stride: 1})
					res, err := pw.Execute(p)
					if err != nil {
						t.Fatal(err)
					}
					rpt := p.Report()
					rpt.WallTime = 0
					rpt.Methods = append([]perf.MethodProfile(nil), rpt.Methods...)
					if rep == 0 {
						first, firstSum = rpt, res.Checksum
						continue
					}
					if res.Checksum != firstSum {
						t.Errorf("rep %d checksum %x != first %x", rep, res.Checksum, firstSum)
					}
					if !reflect.DeepEqual(rpt, first) {
						t.Errorf("rep %d full report diverges from first", rep)
					}
				}
			})
		}
	}
	if seen != len(targets) {
		t.Fatalf("found %d of %d compiled-engine benchmarks", seen, len(targets))
	}
}
