package harness

import (
	"context"
	"os"
	"reflect"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/perf"
)

// TestSuiteDifferentialReference replays benchmark workloads through the
// optimized event path and the retained pre-optimization reference path
// (Options.Reference) and requires bit-identical Measurements — the proof
// that the event-path rewrite changed no Report anywhere in the suite.
//
// By default every benchmark runs its test and train workloads, which keeps
// the sweep affordable on one core. Set ALBERTA_DIFF_FULL=1 (CI does, in a
// dedicated step) to sweep all 15 benchmarks × every workload, including
// refrate/refspeed and the Alberta inputs.
func TestSuiteDifferentialReference(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	full := os.Getenv("ALBERTA_DIFF_FULL") == "1"

	suite, err := benchmarks.Suite()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pairs := 0
	for _, b := range suite.Benchmarks() {
		ws, err := b.Workloads()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ws {
			if !full {
				if k := w.WorkloadKind(); k != core.KindTest && k != core.KindTrain {
					continue
				}
			}
			b, w := b, w
			pairs++
			t.Run(b.Name()+"/"+w.WorkloadName(), func(t *testing.T) {
				opt, err := RunWorkload(ctx, b, w, Options{Reps: 1, Stride: 1})
				if err != nil {
					t.Fatal(err)
				}
				ref, err := RunWorkload(ctx, b, w, Options{Reps: 1, Stride: 1, Reference: true})
				if err != nil {
					t.Fatal(err)
				}
				opt.WallSeconds, ref.WallSeconds = 0, 0
				if !reflect.DeepEqual(opt, ref) {
					t.Errorf("optimized measurement diverges from reference\noptimized: %+v\nreference: %+v", opt, ref)
				}
			})
		}
	}
	if pairs == 0 {
		t.Fatal("no workloads selected")
	}
}

// TestPreparedMatchesColdRuns is the prepared-workload acceptance sweep: a
// cell run through the harness — input prepared once, shared by several
// repetitions, profiler recycled with Reset between them — must produce a
// Measurement bit-identical (except WallSeconds) to a cold core.Benchmark.Run
// on a fresh profiler. Together with runWorkload's own cross-repetition
// determinism check this proves both prepared-vs-unprepared and
// recycled-vs-fresh equivalence for every benchmark.
//
// By default every benchmark runs its test and train workloads; set
// ALBERTA_DIFF_FULL=1 for the full matrix.
func TestPreparedMatchesColdRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	full := os.Getenv("ALBERTA_DIFF_FULL") == "1"

	suite, err := benchmarks.Suite()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pairs := 0
	for _, b := range suite.Benchmarks() {
		ws, err := b.Workloads()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := b.(core.Preparer); !ok {
			t.Errorf("%s does not implement core.Preparer", b.Name())
		}
		for _, w := range ws {
			if !full {
				if k := w.WorkloadKind(); k != core.KindTest && k != core.KindTrain {
					continue
				}
			}
			b, w := b, w
			pairs++
			t.Run(b.Name()+"/"+w.WorkloadName(), func(t *testing.T) {
				p := perf.NewWithOptions(perf.Options{Stride: 1})
				res, err := b.Run(w, p)
				if err != nil {
					t.Fatal(err)
				}
				report := p.Report()

				m, err := RunWorkload(ctx, b, w, Options{Reps: 2, Stride: 1})
				if err != nil {
					t.Fatal(err)
				}
				if m.Checksum != res.Checksum {
					t.Errorf("checksum: prepared %x, cold %x", m.Checksum, res.Checksum)
				}
				if m.Cycles != report.Cycles {
					t.Errorf("cycles: prepared %d, cold %d", m.Cycles, report.Cycles)
				}
				if m.TopDown != report.TopDown {
					t.Errorf("topdown: prepared %+v, cold %+v", m.TopDown, report.TopDown)
				}
				if !reflect.DeepEqual(m.Coverage, report.Coverage) {
					t.Errorf("coverage: prepared %+v, cold %+v", m.Coverage, report.Coverage)
				}
			})
		}
	}
	if pairs == 0 {
		t.Fatal("no workloads selected")
	}
}
