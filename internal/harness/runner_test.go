package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness/report"
	"repro/internal/perf"
)

// slowBench is a configurable benchmark for runner tests: n Alberta
// workloads plus a refrate, an optional per-run delay, and an optional set
// of workloads that fail.
type slowBench struct {
	name   string
	n      int
	delay  time.Duration
	failOn map[string]bool
}

func (s *slowBench) Name() string { return s.name }
func (s *slowBench) Area() string { return "testing" }
func (s *slowBench) Workloads() ([]core.Workload, error) {
	ws := []core.Workload{core.Meta{Name: "refrate", Kind: core.KindRefrate}}
	for i := 0; i < s.n; i++ {
		ws = append(ws, core.Meta{Name: fmt.Sprintf("alberta.%02d", i), Kind: core.KindAlberta})
	}
	return ws, nil
}

var errBoom = errors.New("boom")

func (s *slowBench) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	if s.failOn[w.WorkloadName()] {
		return core.Result{}, errBoom
	}
	p.Do("main", func() { p.Ops(uint64(10 * (1 + len(w.WorkloadName())))) })
	sum := core.NewChecksum().AddString(s.name).AddString(w.WorkloadName())
	return core.Result{
		Benchmark: s.name, Workload: w.WorkloadName(),
		Kind: w.WorkloadKind(), Checksum: sum.Value(),
	}, nil
}

// stripWall zeroes the one field allowed to differ across worker counts.
func stripWall(res report.Results) report.Results {
	out := report.Results{}
	for name, ms := range res {
		cp := make([]report.Measurement, len(ms))
		copy(cp, ms)
		for i := range cp {
			cp[i].WallSeconds = 0
		}
		out[name] = cp
	}
	return out
}

func TestRunnerParallelSerialEquivalence(t *testing.T) {
	s, err := core.NewSuite(
		&quickBench{name: "900.quick_r"},
		&quickBench{name: "901.fast_r"},
		&quickBench{name: "902.slow_r"},
		&quickBench{name: "903.zip_r"},
	)
	if err != nil {
		t.Fatal(err)
	}
	serialOpts := quickOpts()
	serialOpts.Workers = 1
	serial, err := NewRunner(s, serialOpts).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	parallelOpts := quickOpts()
	parallelOpts.Workers = 8
	parallel, err := NewRunner(s, parallelOpts).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(serial), stripWall(parallel)) {
		t.Errorf("parallel results differ from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	// Workload order within each benchmark must follow the inventory, not
	// completion order.
	for _, name := range parallel.SortedBenchmarks() {
		ms := parallel[name]
		if len(ms) != 4 {
			t.Fatalf("%s: %d measurements, want 4", name, len(ms))
		}
		want := []string{"train", "refrate", "alberta.a", "alberta.b"}
		for i, m := range ms {
			if m.Workload != want[i] {
				t.Errorf("%s[%d] = %s, want %s", name, i, m.Workload, want[i])
			}
		}
	}
}

func TestRunnerCancellation(t *testing.T) {
	s, err := core.NewSuite(&slowBench{name: "910.sleepy_r", n: 40, delay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	opts := Options{Reps: 1, Stride: 1, Workers: 2, Progress: func(e Event) {
		if e.Kind == EventWorkloadDone && done.Add(1) == 1 {
			cancel()
		}
	}}
	start := time.Now()
	res, err := NewRunner(s, opts).Run(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled run returned results: %v", res)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
	if n := done.Load(); n >= 41 {
		t.Errorf("all %d workloads completed despite cancellation", n)
	}
}

func TestRunnerDeadline(t *testing.T) {
	s, err := core.NewSuite(&slowBench{name: "911.sleepy_r", n: 60, delay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = NewRunner(s, Options{Reps: 1, Workers: 2}).Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunnerErrorCollection(t *testing.T) {
	s, err := core.NewSuite(
		&slowBench{name: "920.bad_r", n: 3, failOn: map[string]bool{"alberta.00": true, "alberta.02": true}},
		&slowBench{name: "921.good_r", n: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRunner(s, Options{Reps: 1, Workers: 4}).Run(context.Background())
	var runErr *RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if len(runErr.Failures) != 2 {
		t.Fatalf("failures = %d, want 2: %v", len(runErr.Failures), runErr)
	}
	// Failures follow inventory order regardless of completion order.
	for i, want := range []string{"alberta.00", "alberta.02"} {
		f := runErr.Failures[i]
		if f.Benchmark != "920.bad_r" || f.Workload != want {
			t.Errorf("failure[%d] = %s/%s, want 920.bad_r/%s", i, f.Benchmark, f.Workload, want)
		}
	}
	if !errors.Is(err, errBoom) {
		t.Error("errors.Is should reach the underlying failure through RunError")
	}
	// Partial results: the good benchmark is complete, the bad one keeps
	// its successful workloads.
	if got := len(res["921.good_r"]); got != 3 {
		t.Errorf("921.good_r measurements = %d, want 3", got)
	}
	if got := len(res["920.bad_r"]); got != 2 {
		t.Errorf("920.bad_r measurements = %d, want 2 (refrate + alberta.01)", got)
	}
}

func TestRunnerFailFast(t *testing.T) {
	s, err := core.NewSuite(&slowBench{name: "930.bad_r", n: 30, delay: time.Millisecond,
		failOn: map[string]bool{"alberta.02": true}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRunner(s, Options{Reps: 1, Workers: 2, FailFast: true}).Run(context.Background())
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
	var runErr *RunError
	if errors.As(err, &runErr) {
		t.Error("FailFast should return the first error alone, not a *RunError")
	}
	if res != nil {
		t.Errorf("FailFast run returned results: %v", res)
	}
}

func TestRunnerProgressEvents(t *testing.T) {
	s, err := core.NewSuite(&slowBench{name: "940.ok_r", n: 5})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	opts := Options{Reps: 1, Workers: 3, Progress: func(e Event) { events = append(events, e) }}
	if _, err := NewRunner(s, opts).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 6 units → 6 start + 6 done events, serialized (the unsynchronized
	// append above is safe only because the Runner serializes calls; the
	// race detector checks that claim).
	if len(events) != 12 {
		t.Fatalf("events = %d, want 12", len(events))
	}
	var starts, dones int
	for _, e := range events {
		switch e.Kind {
		case EventWorkloadStart:
			starts++
		case EventWorkloadDone:
			dones++
		}
		if e.Total != 6 {
			t.Errorf("event total = %d, want 6", e.Total)
		}
	}
	if starts != 6 || dones != 6 {
		t.Errorf("starts/dones = %d/%d, want 6/6", starts, dones)
	}
	last := events[len(events)-1]
	if last.Completed != 6 {
		t.Errorf("final completed = %d, want 6", last.Completed)
	}
}

// TestRunnerProgressCompletedSerial pins the documented Completed contract
// (see Event): a start event does not count its own cell, the matching
// terminal event does, so a serial run emits exactly 0, 1, 1, 2, 2, …, N-1,
// N. The contract holds for failing cells too — errors count as completed.
func TestRunnerProgressCompletedSerial(t *testing.T) {
	s, err := core.NewSuite(&slowBench{name: "941.serial_r", n: 3,
		failOn: map[string]bool{"alberta.01": true}})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	var kinds []EventKind
	opts := Options{Reps: 1, Workers: 1, Progress: func(e Event) {
		got = append(got, e.Completed)
		kinds = append(kinds, e.Kind)
	}}
	if _, err := NewRunner(s, opts).Run(context.Background()); err == nil {
		t.Fatal("expected the seeded failure to surface")
	}
	const n = 4 // refrate + 3 alberta
	want := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		want = append(want, i, i+1)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("serial Completed sequence = %v, want %v", got, want)
	}
	for i, k := range kinds {
		if i%2 == 0 && k != EventWorkloadStart {
			t.Errorf("event %d kind = %v, want start", i, k)
		}
		if i%2 == 1 && k == EventWorkloadStart {
			t.Errorf("event %d kind = %v, want terminal", i, k)
		}
	}
}

// zeroChecksumBench returns checksum 0 on the first repetition and 1 on
// later ones: a legitimate-zero first checksum followed by divergence. The
// old first-rep sentinel (m.Checksum == 0) re-initialized the measurement
// every rep and silently skipped this determinism violation.
type zeroChecksumBench struct {
	runs atomic.Int64
}

func (z *zeroChecksumBench) Name() string { return "950.zero_r" }
func (z *zeroChecksumBench) Area() string { return "testing" }
func (z *zeroChecksumBench) Workloads() ([]core.Workload, error) {
	return []core.Workload{core.Meta{Name: "refrate", Kind: core.KindRefrate}}, nil
}
func (z *zeroChecksumBench) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	var sum uint64
	if z.runs.Add(1) > 1 {
		sum = 1
	}
	return core.Result{Benchmark: z.Name(), Workload: w.WorkloadName(),
		Kind: w.WorkloadKind(), Checksum: sum}, nil
}

func TestRunWorkloadDetectsNondeterminismAfterZeroChecksum(t *testing.T) {
	b := &zeroChecksumBench{}
	w, err := core.FindWorkload(b, "refrate")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunWorkload(context.Background(), b, w, Options{Reps: 3})
	if err == nil || !strings.Contains(err.Error(), "nondeterministic checksum") {
		t.Fatalf("expected nondeterminism error, got %v", err)
	}
}
