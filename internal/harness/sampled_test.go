package harness

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/harness/report"
	"repro/internal/perf"
)

// TestSampledWithinTolerance is the differential validator behind `make
// diff-sampled`: for every benchmark × workload it measures the cell
// exactly and phase-sampled on the same prepared input and holds each of
// the 22 report counters to its density-tiered error budget
// (perf.DefaultTolerance). Architectural counters and the checksum must
// match exactly — sampling only ever extrapolates probe-derived counters.
//
// By default every benchmark runs its test and train workloads; set
// ALBERTA_DIFF_FULL=1 (CI does, in a dedicated step) for the full matrix
// including refrate/refspeed and the Alberta inputs.
func TestSampledWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	full := os.Getenv("ALBERTA_DIFF_FULL") == "1"

	suite, err := benchmarks.Suite()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tol := perf.DefaultTolerance()
	pairs := 0
	for _, b := range suite.Benchmarks() {
		ws, err := b.Workloads()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ws {
			if !full {
				if k := w.WorkloadKind(); k != core.KindTest && k != core.KindTrain {
					continue
				}
			}
			b, w := b, w
			pairs++
			t.Run(b.Name()+"/"+w.WorkloadName(), func(t *testing.T) {
				c, err := SampledDiff(ctx, b, w, Options{Reps: 1})
				if err != nil {
					t.Fatal(err)
				}
				et, st := c.Exact.Total, c.Sampled.Total
				if et.Ops != st.Ops || et.LongOps != st.LongOps ||
					et.Branches != st.Branches || et.Taken != st.Taken ||
					et.Loads != st.Loads || et.Stores != st.Stores {
					t.Errorf("architectural counters diverged:\nexact   %+v\nsampled %+v", et, st)
				}
				for _, v := range c.Diff.Violations(tol) {
					t.Errorf("counter %s: exact %.0f sampled %.0f rel %.4f exceeds tier budget %.2f (plan: %d/%d intervals live)",
						v.Name, v.Exact, v.Sampled, v.Rel, tol.For(v.Events),
						c.Plan.LiveIntervals(), c.Plan.Intervals())
				}
			})
		}
	}
	if pairs == 0 {
		t.Fatal("no workloads selected")
	}
}

// TestSampledRunsBitIdentical: two complete sampled harness measurements of
// the same cell — profile, plan, warm, measure, each from scratch — must
// agree on every Measurement field except WallSeconds. This pins the whole
// pipeline's determinism at the harness level: signatures, clustering,
// checkpoints and extrapolated folds.
func TestSampledRunsBitIdentical(t *testing.T) {
	suite, err := benchmarks.Suite()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b := suite.Benchmarks()[0]
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	var w core.Workload
	for _, cand := range ws {
		if cand.WorkloadKind() == core.KindTrain {
			w = cand
			break
		}
	}
	if w == nil {
		t.Fatalf("%s has no train workload", b.Name())
	}
	opts := Options{Reps: 1, Sampled: true}
	m1, err := RunWorkload(ctx, b, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunWorkload(ctx, b, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Sampled || !m2.Sampled {
		t.Fatal("sampled measurements must be marked Sampled")
	}
	m1.WallSeconds, m2.WallSeconds = 0, 0
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("two sampled runs diverged:\nfirst  %+v\nsecond %+v", m1, m2)
	}
}

// TestSampledOptionsNormalize pins the sampled-mode option rules: defaults
// filled in, incompatible combinations rejected, and sampled knobs without
// sampled mode rejected (they would silently change the cache key
// otherwise).
func TestSampledOptionsNormalize(t *testing.T) {
	o, err := Options{Sampled: true}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if o.SampledInterval != perf.DefaultSampleInterval || o.SampledPhases == 0 {
		t.Fatalf("sampled defaults not filled in: %+v", o)
	}
	cfg := o.ReportConfig()
	if !cfg.Sampled || cfg.SampledInterval != o.SampledInterval || cfg.SampledPhases != o.SampledPhases {
		t.Fatalf("ReportConfig dropped sampled fields: %+v", cfg)
	}
	for _, bad := range []Options{
		{Sampled: true, Reference: true},
		{Sampled: true, Stride: 2},
		{Sampled: true, SampledPhases: -1},
		{SampledInterval: 1 << 10},
		{SampledPhases: 4},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("Options %+v must be rejected", bad)
		}
	}
}

// TestExactEnvelopeOmitsSampledKeys: exact measurements and configs must
// serialize without any sampled key, keeping schema version 1 envelopes
// byte-identical to those produced before sampling existed.
func TestExactEnvelopeOmitsSampledKeys(t *testing.T) {
	mb, err := json.Marshal(report.Measurement{Benchmark: "x"})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := json.Marshal(report.RunConfig{Reps: 3, Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{string(mb), string(cb)} {
		if strings.Contains(s, "sampled") {
			t.Fatalf("exact envelope leaks sampled keys: %s", s)
		}
	}
}
