package harness

import (
	"repro/internal/core"
	"repro/internal/harness/report"
)

// This file is the compatibility layer over internal/harness/report: the
// row types and builders historically lived in this package, and existing
// callers keep working through the aliases and thin wrappers below. New
// code should import repro/internal/harness/report directly; the wrappers
// are kept for one release and will then be removed (see CHANGES.md).

// TableIRow is one line of the reproduced Table I.
//
// Deprecated: use report.TableIRow.
type TableIRow = report.TableIRow

// TableIIRow is one benchmark's line of Table II.
//
// Deprecated: use report.TableIIRow.
type TableIIRow = report.TableIIRow

// FigureSeries is the data behind Figure 1.
//
// Deprecated: use report.FigureSeries.
type FigureSeries = report.FigureSeries

// CoverageSeries is the data behind Figure 2.
//
// Deprecated: use report.CoverageSeries.
type CoverageSeries = report.CoverageSeries

// PaperTableI holds the published Table I values.
//
// Deprecated: use report.PaperTableI.
var PaperTableI = report.PaperTableI

// TableI builds the historical comparison with this run's measured column.
//
// Deprecated: use report.TableI.
func TableI(results SuiteResults) []report.TableIRow { return report.TableI(results) }

// TableII summarizes suite results into the paper's Table II rows.
//
// Deprecated: use report.TableII, which takes the benchmark order
// explicitly so several builders can share one sort.
func TableII(results SuiteResults) ([]report.TableIIRow, error) {
	return report.TableII(results, results.SortedBenchmarks())
}

// Figure1 extracts the stacked top-down series for the requested benchmarks.
//
// Deprecated: use report.Figure1.
func Figure1(results SuiteResults, benchmarks ...string) ([]report.FigureSeries, error) {
	return report.Figure1(results, benchmarks...)
}

// Figure2 extracts per-workload method coverage for the requested benchmarks.
//
// Deprecated: use report.Figure2.
func Figure2(results SuiteResults, topN int, benchmarks ...string) ([]report.CoverageSeries, error) {
	return report.Figure2(results, topN, benchmarks...)
}

// FormatTableI renders the Table I reproduction.
//
// Deprecated: use report.FormatTableI.
func FormatTableI(rows []report.TableIRow) string { return report.FormatTableI(rows) }

// FormatTableII renders rows in the paper's column layout.
//
// Deprecated: use report.FormatTableII.
func FormatTableII(rows []report.TableIIRow) string { return report.FormatTableII(rows) }

// FormatFigure1 renders the per-workload stacked fractions as text bars.
//
// Deprecated: use report.FormatFigure1.
func FormatFigure1(series []report.FigureSeries) string { return report.FormatFigure1(series) }

// FormatFigure2 renders the coverage series as a table.
//
// Deprecated: use report.FormatFigure2.
func FormatFigure2(series []report.CoverageSeries) string { return report.FormatFigure2(series) }

// BenchmarkReport renders the per-benchmark report the Alberta Workloads
// distribution ships for every benchmark.
//
// Deprecated: use report.BenchmarkReport.
func BenchmarkReport(name string, ms []Measurement) string {
	return report.BenchmarkReport(name, ms)
}

// KindBreakdown counts workloads by kind for a benchmark's measurements
// (used by inventory reporting).
func KindBreakdown(ms []Measurement) map[core.Kind]int {
	out := map[core.Kind]int{}
	for _, m := range ms {
		out[m.Kind]++
	}
	return out
}
