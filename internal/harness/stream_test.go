package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/harness/report"
	"repro/internal/perf"
)

// TestStreamMatchesRun proves Stream delivers exactly the cells Run
// retains: collecting the stream by index reproduces Run's Results.
func TestStreamMatchesRun(t *testing.T) {
	s, err := core.NewSuite(
		&quickBench{name: "900.quick_r"},
		&quickBench{name: "901.fast_r"},
	)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	opts.Workers = 4
	want, err := NewRunner(s, opts).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	collected := map[int]report.Measurement{}
	var total int
	err = NewRunner(s, opts).Stream(context.Background(), func(c Cell, m report.Measurement) error {
		if _, dup := collected[c.Index]; dup {
			t.Errorf("cell %d delivered twice", c.Index)
		}
		if c.Benchmark != m.Benchmark || c.Workload != m.Workload {
			t.Errorf("cell %+v does not match measurement %s/%s", c, m.Benchmark, m.Workload)
		}
		collected[c.Index] = m
		total = c.Total
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(collected) != total {
		t.Fatalf("delivered %d of %d cells", len(collected), total)
	}
	got := report.Results{}
	for idx := 0; idx < total; idx++ {
		m := collected[idx]
		got[m.Benchmark] = append(got[m.Benchmark], m)
	}
	if !reflect.DeepEqual(stripWall(want), stripWall(got)) {
		t.Errorf("streamed cells differ from Run results")
	}
}

// TestStreamBuilderSerialParallelEquivalence proves the streaming summary
// is a pure function of the plan: serial and 8-way parallel runs fold to
// identical per-benchmark summaries even though cells arrive in different
// orders.
func TestStreamBuilderSerialParallelEquivalence(t *testing.T) {
	s, err := core.NewSuite(
		&quickBench{name: "900.quick_r"},
		&quickBench{name: "901.fast_r"},
		&quickBench{name: "902.slow_r"},
	)
	if err != nil {
		t.Fatal(err)
	}
	summarize := func(workers int) []report.BenchSummary {
		opts := quickOpts()
		opts.Workers = workers
		b := report.NewBuilder()
		err := NewRunner(s, opts).Stream(context.Background(), func(c Cell, m report.Measurement) error {
			b.Add(c.Index, m)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return b.Summaries()
	}
	serial := summarize(1)
	parallel := summarize(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("summaries differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if len(serial) != 3 || serial[0].Cells != 4 {
		t.Errorf("unexpected summary shape: %+v", serial)
	}
}

// TestStreamSinkErrorCancels proves a sink rejection stops the run: the
// sink is never called again and Stream returns the error.
func TestStreamSinkErrorCancels(t *testing.T) {
	s, err := core.NewSuite(&slowBench{name: "920.stream_r", n: 30})
	if err != nil {
		t.Fatal(err)
	}
	errReject := errors.New("sink full")
	calls := 0
	err = NewRunner(s, Options{Reps: 1, Workers: 2}).Stream(context.Background(),
		func(c Cell, m report.Measurement) error {
			calls++
			return errReject
		})
	if !errors.Is(err, errReject) {
		t.Fatalf("err = %v, want %v", err, errReject)
	}
	if calls != 1 {
		t.Errorf("sink called %d times after rejecting, want 1", calls)
	}
}

// TestPlanRunnerExplicitUnits proves NewPlanRunner runs exactly the given
// plan — including workloads outside any inventory and repeated cells —
// and that Run assembles in plan order.
func TestPlanRunnerExplicitUnits(t *testing.T) {
	b := &quickBench{name: "900.quick_r"}
	units := []Unit{
		{Benchmark: b, Workload: core.Meta{Name: "gen.s7.1", Kind: core.KindAlberta}},
		{Benchmark: b, Workload: core.Meta{Name: "gen.s7.0", Kind: core.KindAlberta}},
		{Benchmark: b, Workload: core.Meta{Name: "gen.s7.1", Kind: core.KindAlberta}},
	}
	res, err := NewPlanRunner(units, Options{Reps: 1, Workers: 2}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ms := res["900.quick_r"]
	if len(ms) != 3 {
		t.Fatalf("%d measurements, want 3", len(ms))
	}
	want := []string{"gen.s7.1", "gen.s7.0", "gen.s7.1"}
	for i, m := range ms {
		if m.Workload != want[i] {
			t.Errorf("plan position %d = %s, want %s", i, m.Workload, want[i])
		}
	}
}

// coverBench inflates every measurement with a wide Coverage map, so
// retaining measurements is immediately visible in heap terms: each cell
// carries ~methods entries of method-name string + float.
type coverBench struct {
	name    string
	methods int
}

func (c *coverBench) Name() string { return c.name }
func (c *coverBench) Area() string { return "testing" }
func (c *coverBench) Workloads() ([]core.Workload, error) {
	return []core.Workload{core.Meta{Name: "refrate", Kind: core.KindRefrate}}, nil
}

func (c *coverBench) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	for i := 0; i < c.methods; i++ {
		p.Do(fmt.Sprintf("method.%s.%04d", w.WorkloadName(), i), func() { p.Ops(3) })
	}
	sum := core.NewChecksum().AddString(c.name).AddString(w.WorkloadName())
	return core.Result{Benchmark: c.name, Workload: w.WorkloadName(),
		Kind: w.WorkloadKind(), Checksum: sum.Value()}, nil
}

// liveHeap forces a collection and returns the live heap size.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestStreamBoundedLiveMeasurements is the acceptance gate for the
// streaming path: a 1000-cell sweep whose measurements carry wide
// Coverage maps must keep the live heap bounded by O(workers)
// Measurements, not O(cells). The sink retains only a compact Row per
// cell (report.Builder); if the runner or builder secretly held on to
// the measurements, the retained coverage maps alone would exceed the
// budget several times over.
func TestStreamBoundedLiveMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-cell sweep")
	}
	const (
		cells   = 1000
		methods = 400
		workers = 4
	)
	b := &coverBench{name: "930.cover_r", methods: methods}
	w := core.Meta{Name: "refrate", Kind: core.KindRefrate}
	units := make([]Unit, cells)
	for i := range units {
		units[i] = Unit{Benchmark: b, Workload: w}
	}

	// Run the identical sweep twice — once retaining only builder rows,
	// once retaining every Measurement — and compare live-heap growth
	// past a warm-up point (cell 100, by which every worker has built its
	// multi-megabyte profiler, an intentional O(workers) cost). The
	// retaining run self-calibrates what O(cells) retention costs on this
	// runtime, so the bound needs no absolute byte budget.
	sweep := func(retain bool) int64 {
		builder := report.NewBuilder()
		var kept []report.Measurement
		var warm, peak uint64
		seen := 0
		err := NewPlanRunner(units, Options{Reps: 1, Workers: workers}).Stream(context.Background(),
			func(c Cell, m report.Measurement) error {
				if retain {
					kept = append(kept, m)
				} else {
					builder.Add(c.Index, m)
				}
				seen++
				if seen == 100 {
					warm = liveHeap()
				} else if seen%100 == 0 {
					if h := liveHeap(); h > peak {
						peak = h
					}
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if h := liveHeap(); h > peak {
			peak = h
		}
		if retain {
			if len(kept) != cells {
				t.Fatalf("retained %d cells, want %d", len(kept), cells)
			}
			runtime.KeepAlive(kept)
		} else if builder.Len() != cells {
			t.Fatalf("builder recorded %d cells, want %d", builder.Len(), cells)
		}
		return int64(peak) - int64(warm)
	}

	streamGrowth := sweep(false)
	retainGrowth := sweep(true)
	if retainGrowth < 5<<20 {
		t.Fatalf("retaining run grew only %d bytes; coverage payload too small to observe — raise methods", retainGrowth)
	}
	// O(workers) live Measurements means the streaming peak must sit far
	// below full retention; 1/5th leaves room for builder rows, GC noise
	// and in-flight cells while still catching any O(cells) leak.
	if streamGrowth*5 > retainGrowth {
		t.Errorf("streaming sweep peaked at %d bytes vs %d retained — measurements are not being released",
			streamGrowth, retainGrowth)
	}
}
