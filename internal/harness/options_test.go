package harness

import (
	"context"
	"testing"

	"repro/internal/core"
)

func TestNormalizeDefaults(t *testing.T) {
	got, err := Options{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultOptions()
	if got.Reps != def.Reps || got.Stride != def.Stride || got.Workers != def.Workers {
		t.Errorf("normalized zero Options = %+v, want DefaultOptions %+v", got, def)
	}
	// Explicit values pass through untouched.
	o := Options{Reps: 5, Stride: 2, Workers: 7, IncludeTest: true, Reference: true, FailFast: true}
	got, err = o.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if got.Reps != 5 || got.Stride != 2 || got.Workers != 7 || !got.IncludeTest || !got.Reference || !got.FailFast {
		t.Errorf("explicit options mangled: %+v", got)
	}
	// Negative workers collapse to the GOMAXPROCS sentinel.
	got, err = Options{Workers: -3}.Normalize()
	if err != nil || got.Workers != 0 {
		t.Errorf("workers = %d, err = %v", got.Workers, err)
	}
}

func TestNormalizeRejectsNegatives(t *testing.T) {
	if _, err := (Options{Reps: -1}).Normalize(); err == nil {
		t.Error("negative reps accepted")
	}
	if _, err := (Options{Stride: -2}).Normalize(); err == nil {
		t.Error("negative stride accepted")
	}
}

func TestRunRejectsInvalidOptions(t *testing.T) {
	b := &quickBench{name: "900.quick_r"}
	w, err := core.FindWorkload(b, "refrate")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkload(context.Background(), b, w, Options{Reps: -1}); err == nil {
		t.Error("RunWorkload accepted negative reps")
	}
	s, err := core.NewSuite(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(s, Options{Stride: -1}).Run(context.Background()); err == nil {
		t.Error("Runner.Run accepted negative stride")
	}
}

func TestReportConfig(t *testing.T) {
	o, err := Options{Reps: 2, Stride: 4, IncludeTest: true, Reference: true, Workers: 9}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	rc := o.ReportConfig()
	if rc.Reps != 2 || rc.Stride != 4 || !rc.IncludeTest || !rc.Reference {
		t.Errorf("ReportConfig = %+v", rc)
	}
}
