// Package perf provides the instrumentation layer between the benchmark
// implementations and the micro-architecture model in internal/uarch. A
// Profiler plays the role that hardware performance counters and a
// sampling profiler played in the paper: it attributes modeled pipeline
// slots to the method currently executing, classifies them with the
// top-down methodology, and reports per-method coverage.
//
// Benchmarks call Enter/Leave (or Do) to delimit methods, Ops/LongOps to
// retire work, Branch to route real branch outcomes through the modeled
// predictor, and Load/Store to route real addresses through the modeled
// cache hierarchy.
package perf

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/stats"
	"repro/internal/uarch"
)

// ClockHz is the modeled core frequency, matching the i7-2600's 3.4 GHz.
const ClockHz = 3.4e9

// opBytes is the modeled average encoded size of one micro-op, used to
// advance the instruction-fetch pointer through a method's code footprint.
const opBytes = 4

// DefaultFootprint is the synthetic code size assigned to a method unless
// SetFootprint overrides it. Larger, flatter programs (a compiler, an XSLT
// engine) should declare bigger footprints so the front-end model sees
// their instruction-cache pressure.
const DefaultFootprint = 1 << 10

// Options configure a Profiler.
type Options struct {
	// Model supplies the slot cost parameters; zero value means
	// uarch.DefaultModel.
	Model uarch.Model
	// Predictor constructs the branch predictor; nil means a tournament
	// predictor.
	Predictor uarch.Predictor
	// Stride sub-samples expensive event simulation: only every Stride-th
	// Branch/Load/Store is routed through the simulators and the observed
	// outcome mix is scaled back up. Stride ≤ 1 simulates everything.
	Stride int
	// Reference selects the retained pre-optimization event path: reference
	// simulators (uarch.RefHierarchy, uarch.RefCache, uarch.RefTournament
	// unless Predictor is set) and per-event decomposition of the batched
	// APIs. Reports are bit-identical to the optimized path — the option
	// exists so differential tests and the benchmark baseline can compare
	// the two in place.
	Reference bool
}

type methodRecord struct {
	name     string
	codeBase uint64
	codeSize uint64
	fetchOff uint64

	// Exact event counts.
	ops, longOps     uint64
	branches, taken  uint64
	loads, stores    uint64
	icMiss, itlbMiss uint64

	// Sampled outcome counts (scaled by stride at report time).
	sBranches, sMispredicts           uint64
	sLoads, sL2, sLLC, sMem, sTLBMiss uint64

	// Interval scratch for phase-sampled mode (see sampled.go): probe
	// outcomes of the current live interval, folded into the counters
	// above — multiplied by the interval weight — at the next boundary.
	// mark is the interval epoch that last touched this record.
	iMisp, iL2, iLLC, iMem, iTLB, iIC, iITLB uint64
	mark                                     uint32
}

// Profiler is the modeled equivalent of "perf stat -e topdown... + perf
// record". It is not safe for concurrent use; benchmarks are single-threaded
// (SPEC CPU rate runs are independent copies).
type Profiler struct {
	model uarch.Model
	pred  uarch.Predictor
	// tour devirtualizes the default predictor: when pred is the concrete
	// *uarch.Tournament, the branch hot path calls it directly instead of
	// through the interface.
	tour *uarch.Tournament
	mem  *uarch.Hierarchy
	l1i  *uarch.Cache
	itlb *uarch.Cache

	// ref, when non-nil, routes every simulator probe through the retained
	// pre-optimization models instead (see Options.Reference). The hot path
	// pays one well-predicted nil check per probe.
	ref *refSims

	// samp, when non-nil, puts the profiler in a phase-sampled pass (see
	// sampled.go): a signature-only profile pass or a plan-driven measure
	// pass. Like ref, the exact hot path pays one nil check per event.
	samp *sampState

	// memShift is the data-side coalescing granularity (log2 of the L1 line
	// size): two addresses with equal addr>>memShift are indistinguishable
	// to the modeled hierarchy. Batched APIs rely on it.
	memShift uint

	// lastData and lastFetch memoize the line of the most recent data and
	// instruction probe. A repeat of the last probed line is a guaranteed
	// MRU hit at every level — probing it neither changes simulator state
	// nor any Report counter — so the optimized path skips the probe
	// entirely (see DESIGN.md). Sentinel ^0 means "nothing probed yet".
	lastData  uint64
	lastFetch uint64

	stride  int
	brTick  int
	memTick int

	methods map[string]*methodRecord
	order   []string
	stack   []*methodRecord
	current *methodRecord

	// methodBuf backs Report's Methods slice; Report clears and refills it
	// instead of allocating, so each Report invalidates the Methods slice
	// of the previous one (see Report's doc comment).
	methodBuf []MethodProfile

	started time.Time
}

// refSims bundles the reference simulators of the pre-optimization path.
type refSims struct {
	mem  *uarch.RefHierarchy
	l1i  *uarch.RefCache
	itlb *uarch.RefCache
}

// New returns a profiler with default options.
func New() *Profiler { return NewWithOptions(Options{}) }

// NewWithOptions returns a configured profiler.
func NewWithOptions(opts Options) *Profiler {
	model := opts.Model
	if model.IssueWidth == 0 {
		model = uarch.DefaultModel()
	}
	pred := opts.Predictor
	if pred == nil {
		if opts.Reference {
			pred = uarch.NewRefTournament(14)
		} else {
			pred = uarch.NewTournament(14)
		}
	}
	stride := opts.Stride
	if stride < 1 {
		stride = 1
	}
	p := &Profiler{
		model:     model,
		pred:      pred,
		stride:    stride,
		methods:   make(map[string]*methodRecord),
		started:   time.Now(),
		lastData:  ^uint64(0),
		lastFetch: ^uint64(0),
	}
	if t, ok := pred.(*uarch.Tournament); ok {
		p.tour = t
	}
	if opts.Reference {
		p.ref = &refSims{
			mem:  uarch.NewRefHierarchy(),
			l1i:  uarch.NewRefCache(uarch.CacheConfig{Name: "L1I", SizeB: 32 << 10, Ways: 8, LineSize: 64}),
			itlb: uarch.NewRefCache(uarch.CacheConfig{Name: "ITLB", SizeB: 128 * 4096, Ways: 4, LineSize: 4096}),
		}
		p.memShift = 6
	} else {
		p.mem = uarch.NewHierarchy()
		p.l1i = uarch.NewCache(uarch.CacheConfig{Name: "L1I", SizeB: 32 << 10, Ways: 8, LineSize: 64})
		p.itlb = uarch.NewCache(uarch.CacheConfig{Name: "ITLB", SizeB: 128 * 4096, Ways: 4, LineSize: 4096})
		p.memShift = p.mem.L1.LineShift()
	}
	p.current = p.method("(toplevel)")
	return p
}

// Reference reports whether the profiler runs the retained pre-optimization
// event path.
func (p *Profiler) Reference() bool { return p.ref != nil }

// memAccess routes a data access through the modeled (or reference)
// hierarchy.
func (p *Profiler) memAccess(addr uint64) (uarch.MemoryResult, bool) {
	if p.ref != nil {
		return p.ref.mem.Access(addr)
	}
	return p.mem.Access(addr)
}

// l1iAccess probes the instruction cache.
func (p *Profiler) l1iAccess(addr uint64) bool {
	if p.ref != nil {
		return p.ref.l1i.Access(addr)
	}
	return p.l1i.Access(addr)
}

// itlbAccess probes the instruction TLB.
func (p *Profiler) itlbAccess(addr uint64) bool {
	if p.ref != nil {
		return p.ref.itlb.Access(addr)
	}
	return p.itlb.Access(addr)
}

// Reset restores the profiler to its just-constructed state — cleared
// method table, cold simulators, fresh wall clock — without reallocating
// anything: the modeled hierarchy is cleared in place and the method
// records are kept and zeroed rather than rebuilt, so a profiler can be
// recycled across repetitions and across (benchmark, workload) cells with
// no allocation rework. The harness relies on this.
//
// Recycled records are restored exactly to their just-constructed state
// (counters and fetch offset zeroed, footprint back to DefaultFootprint),
// so a Reset profiler's Report is bit-identical to a fresh profiler's for
// the same event stream; Report's output ordering is independent of the
// retained insertion order because it sorts by (cycles, name) and skips
// methods that observed no events.
func (p *Profiler) Reset() {
	p.pred.Reset()
	if p.ref != nil {
		p.ref.mem.Reset()
		p.ref.l1i.Reset()
		p.ref.itlb.Reset()
	} else {
		p.mem.Reset()
		p.l1i.Reset()
		p.itlb.Reset()
	}
	p.brTick = 0
	p.memTick = 0
	p.lastData = ^uint64(0)
	p.lastFetch = ^uint64(0)
	// Reset leaves sampled mode: each sampled pass is re-entered explicitly
	// on a Reset profiler via BeginSampleProfile/BeginSampleMeasure.
	p.samp = nil
	// Keep and clear the records: name and codeBase are pure functions of
	// the method name, so a recycled record is indistinguishable from a
	// fresh one once its run state is zeroed.
	for _, m := range p.methods {
		*m = methodRecord{name: m.name, codeBase: m.codeBase, codeSize: DefaultFootprint}
	}
	p.stack = p.stack[:0]
	p.current = p.method("(toplevel)")
	p.started = time.Now()
}

// method returns (creating if needed) the record for name, assigning it a
// synthetic, stable code region.
func (p *Profiler) method(name string) *methodRecord {
	if m, ok := p.methods[name]; ok {
		return m
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	m := &methodRecord{
		name:     name,
		codeBase: (h &^ 0x3f) | 0x4000000000, // cache-line aligned, away from data
		codeSize: DefaultFootprint,
	}
	p.methods[name] = m
	p.order = append(p.order, name)
	return m
}

// SetFootprint declares the synthetic code size, in bytes, of a method. It
// may be called before or after the method first runs.
func (p *Profiler) SetFootprint(name string, bytes uint64) {
	if bytes < 64 {
		bytes = 64
	}
	p.method(name).codeSize = bytes &^ 0x3f
}

// Enter pushes method name onto the region stack. Events observed until the
// matching Leave (or a nested Enter) are attributed to it.
func (p *Profiler) Enter(name string) {
	p.stack = append(p.stack, p.current)
	m := p.method(name)
	p.current = m
	if s := p.samp; s != nil {
		// An entry retires no ops (no interval tick), but it is the
		// strongest phase signal, so it weighs extra in the signature.
		if s.profiling {
			s.cur[sigBucket(m.codeBase)] += enterSigWeight
		} else if s.warming {
			p.fetch(m, 1)
		} else if s.live {
			s.touch(m)
			p.sampFetch(m, 1)
		} else {
			advanceFetch(m, 1)
		}
		return
	}
	// A call re-steers fetch to the method entry.
	p.fetch(m, 1)
}

// Leave pops the region stack. Unbalanced Leave calls panic: they indicate
// an instrumentation bug in a benchmark.
func (p *Profiler) Leave() {
	if len(p.stack) == 0 {
		panic("perf: Leave without matching Enter")
	}
	p.current = p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
}

// Do runs fn inside an Enter/Leave pair for name.
func (p *Profiler) Do(name string, fn func()) {
	p.Enter(name)
	defer p.Leave()
	fn()
}

// fetch advances the current method's instruction-fetch pointer by n ops and
// touches the instruction cache/TLB for every 64-byte line crossed.
func (p *Profiler) fetch(m *methodRecord, n uint64) {
	bytes := n * opBytes
	// Walk at line granularity; bound the walk so a huge Ops batch in a
	// small method costs one pass over its footprint (the loop body is
	// resident after that).
	if bytes > m.codeSize*2 {
		bytes = m.codeSize * 2
	}
	start := m.fetchOff
	for off := uint64(0); off < bytes; off += 64 {
		addr := m.codeBase + (start+off)%m.codeSize
		// A refetch of the line just fetched (a short Ops batch that did
		// not cross a line boundary) is a guaranteed L1I and ITLB MRU hit
		// with no state change; skip the probes. The reference path keeps
		// the original probe-always behaviour.
		if line := addr >> 6; p.ref == nil {
			if line == p.lastFetch {
				continue
			}
			p.lastFetch = line
		}
		if !p.l1iAccess(addr) {
			m.icMiss++
		}
		if !p.itlbAccess(addr) {
			m.itlbMiss++
		}
	}
	m.fetchOff = (start + bytes) % m.codeSize
}

// Ops retires n simple micro-ops in the current method.
func (p *Profiler) Ops(n uint64) {
	m := p.current
	m.ops += n
	if s := p.samp; s != nil {
		if !s.profiling {
			if s.warming {
				p.fetch(m, n)
			} else if s.live {
				s.touch(m)
				p.sampFetch(m, n)
			} else {
				advanceFetch(m, n)
			}
		}
		p.sampAdvance(n)
		return
	}
	p.fetch(m, n)
}

// LongOps retires n long-latency micro-ops (divisions, square roots,
// transcendental kernels) in the current method.
func (p *Profiler) LongOps(n uint64) {
	m := p.current
	m.longOps += n
	if s := p.samp; s != nil {
		if !s.profiling {
			if s.warming {
				p.fetch(m, n)
			} else if s.live {
				s.touch(m)
				p.sampFetch(m, n)
			} else {
				advanceFetch(m, n)
			}
		}
		p.sampAdvance(n)
		return
	}
	p.fetch(m, n)
}

// observe routes a sampled branch to the predictor, devirtualized when the
// default tournament is in use.
func (p *Profiler) observe(site uint64, taken bool) bool {
	if p.tour != nil {
		return p.tour.Observe(site, taken)
	}
	return p.pred.Observe(site, taken)
}

// Branch records a dynamic conditional branch at the given site (any value
// stable for the static branch) with its actual outcome. The site is
// combined with the method's code region so sites are globally distinct.
func (p *Profiler) Branch(site uint64, taken bool) {
	m := p.current
	m.branches++
	if taken {
		m.taken++
	}
	m.ops++ // the branch itself retires
	if s := p.samp; s != nil {
		if s.profiling {
			s.cur[sigBucket(m.codeBase+site*8)]++
		} else if s.warming {
			m.sBranches++
			if !p.observe(m.codeBase+site*8, taken) {
				m.sMispredicts++
			}
		} else if s.live {
			s.touch(m)
			if !p.observe(m.codeBase+site*8, taken) {
				m.iMisp++
			}
		}
		p.sampAdvance(1)
		return
	}
	if p.stride == 1 {
		// Exact simulation: every branch is sampled and brTick stays 0.
		m.sBranches++
		if !p.observe(m.codeBase+site*8, taken) {
			m.sMispredicts++
		}
		return
	}
	p.brTick++
	if p.brTick >= p.stride {
		p.brTick = 0
		m.sBranches++
		if !p.observe(m.codeBase+site*8, taken) {
			m.sMispredicts++
		}
	}
}

// Jump records an unconditional control transfer: it retires one op and
// redirects fetch (same front-end bubble as a taken branch), but involves
// no prediction.
func (p *Profiler) Jump() {
	m := p.current
	m.ops++
	m.taken++
	if p.samp != nil {
		p.sampAdvance(1)
	}
}

// Load records a data load from addr through the modeled hierarchy.
func (p *Profiler) Load(addr uint64) {
	m := p.current
	m.loads++
	m.ops++
	if s := p.samp; s != nil {
		if !s.profiling {
			if s.warming {
				m.sLoads++
				p.classifyLoad(m, addr)
			} else if s.live {
				s.touch(m)
				p.classifyLoadScratch(m, addr)
			}
		}
		p.sampAdvance(1)
		return
	}
	p.memTick++
	if p.memTick >= p.stride {
		p.memTick = 0
		m.sLoads++
		p.classifyLoad(m, addr)
	}
}

// Store records a data store to addr. Stores allocate in the hierarchy but
// their latency is assumed hidden by the store buffer, so only TLB misses
// and line fills are modeled.
func (p *Profiler) Store(addr uint64) {
	m := p.current
	m.stores++
	m.ops++
	if s := p.samp; s != nil {
		if !s.profiling {
			if s.warming {
				p.storeProbe(m, addr)
			} else if s.live {
				s.touch(m)
				p.storeProbeScratch(m, addr)
			}
		}
		p.sampAdvance(1)
		return
	}
	p.memTick++
	if p.memTick >= p.stride {
		p.memTick = 0
		p.storeProbe(m, addr)
	}
}

// events converts a method record to scaled uarch events.
func (m *methodRecord) events(stride uint64) uarch.Events {
	return uarch.Events{
		Ops:         m.ops,
		LongOps:     m.longOps,
		Branches:    m.branches,
		Taken:       m.taken,
		Mispredicts: m.sMispredicts * stride,
		Loads:       m.loads,
		Stores:      m.stores,
		L2Hits:      m.sL2 * stride,
		LLCHits:     m.sLLC * stride,
		MemHits:     m.sMem * stride,
		TLBMisses:   m.sTLBMiss * stride,
		ICMisses:    m.icMiss,
		ITLBMisses:  m.itlbMiss,
	}
}

// MethodProfile is the per-method portion of a report.
type MethodProfile struct {
	Name   string
	Events uarch.Events
	Slots  uarch.Slots
	Cycles uint64
}

// Report is the complete observation of one benchmark execution: the whole-
// program event totals, top-down classification, modeled time, and method
// coverage.
type Report struct {
	Total     uarch.Events
	Slots     uarch.Slots
	Cycles    uint64
	TopDown   stats.TopDown
	Methods   []MethodProfile
	Coverage  stats.Coverage
	WallTime  time.Duration
	ModeledNS float64
}

// Report finalizes and returns the observation. The profiler can keep
// accumulating afterwards; Report is a snapshot — except for the Methods
// slice, which is backed by a buffer the profiler recycles: the next
// Report or Reset call on the same profiler overwrites it. Callers that
// retain Methods across Report calls must copy it; the scalar fields and
// the Coverage map are always fresh.
func (p *Profiler) Report() Report {
	if len(p.stack) != 0 {
		panic(fmt.Sprintf("perf: Report with %d unmatched Enter calls (current %q)", len(p.stack), p.current.name))
	}
	// A sampled measure pass ends here: fold the final (partial, always
	// live) interval's scratch into the report counters.
	if s := p.samp; s != nil && !s.profiling && !s.warming {
		s.finishMeasure()
	}
	stride := uint64(p.stride)
	var total uarch.Events
	var totalSlots uarch.Slots
	rep := Report{Coverage: stats.Coverage{}, Methods: p.methodBuf[:0]}

	for _, name := range p.order {
		m := p.methods[name]
		ev := m.events(stride)
		slots := p.model.Account(ev)
		if slots.Total() == 0 {
			continue
		}
		total.Add(ev)
		totalSlots.Add(slots)
		rep.Methods = append(rep.Methods, MethodProfile{
			Name:   name,
			Events: ev,
			Slots:  slots,
			Cycles: p.model.Cycles(slots),
		})
	}

	rep.Total = total
	rep.Slots = totalSlots
	rep.Cycles = p.model.Cycles(totalSlots)
	fe, be, bs, rt := totalSlots.Fractions()
	rep.TopDown = stats.TopDown{FrontEnd: fe, BackEnd: be, BadSpec: bs, Retiring: rt}

	if rep.Cycles > 0 {
		for i := range rep.Methods {
			rep.Coverage[rep.Methods[i].Name] = float64(rep.Methods[i].Slots.Total()) / float64(totalSlots.Total())
		}
	}
	sort.Slice(rep.Methods, func(i, j int) bool {
		if rep.Methods[i].Cycles != rep.Methods[j].Cycles {
			return rep.Methods[i].Cycles > rep.Methods[j].Cycles
		}
		return rep.Methods[i].Name < rep.Methods[j].Name
	})
	p.methodBuf = rep.Methods
	rep.WallTime = time.Since(p.started)
	rep.ModeledNS = float64(rep.Cycles) / ClockHz * 1e9
	return rep
}

// ModeledSeconds converts modeled cycles to seconds at the modeled clock.
func ModeledSeconds(cycles uint64) float64 { return float64(cycles) / ClockHz }
