package perf_test

import (
	"reflect"
	"testing"

	"repro/internal/perf"
	"repro/internal/phase"
)

// driveSynthetic emits a deterministic two-phase event stream: branchy
// pointer-chasing blocks alternating with streaming load/store blocks,
// roughly 4M retired ops. It exercises every primitive and batched API so
// the sampled hooks are covered end to end.
func driveSynthetic(p *perf.Profiler) {
	g := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		g = g*6364136223846793005 + 1442695040888963407
		return g
	}
	p.SetFootprint("chase", 8<<10)
	p.SetFootprint("stream", 2<<10)
	for block := 0; block < 24; block++ {
		if block%2 == 0 {
			p.Enter("chase")
			for i := 0; i < 20000; i++ {
				v := next()
				p.OpsBranch(3, v%97, v&(1<<33) != 0)
				p.Load(0x100000 + v%(48<<20))
				if i%64 == 0 {
					p.Jump()
				}
			}
			p.Leave()
		} else {
			p.Enter("stream")
			for i := 0; i < 500; i++ {
				base := next() % (8 << 20)
				p.LoadRange(0x4000000+base, 8, 64)
				p.StoreRange(0x8000000+base, 8, 32)
				p.LoadStoreRange(0xc000000+base, 16, 16)
				p.Branch(uint64(i%13), i%3 == 0)
				p.LongOps(50)
			}
			p.Leave()
		}
	}
}

// snapshot zeroes a Report's wall-clock field so two runs compare cleanly.
func snapshot(r perf.Report) perf.Report {
	r.WallTime = 0
	ms := make([]perf.MethodProfile, len(r.Methods))
	copy(ms, r.Methods)
	r.Methods = ms
	return r
}

// TestSampledAllLiveMatchesExact pins the degenerate case: a measure pass
// whose plan keeps every interval live must be bit-identical to exact
// simulation — same probes in the same order, weight-1 folds.
func TestSampledAllLiveMatchesExact(t *testing.T) {
	exact := perf.New()
	driveSynthetic(exact)
	er := snapshot(exact.Report())

	samp := perf.New()
	plan := &perf.SamplePlan{IntervalOps: 64 << 10, Weights: []uint32{1}}
	if err := samp.BeginSampleMeasure(plan, nil); err != nil {
		t.Fatal(err)
	}
	driveSynthetic(samp)
	sr := snapshot(samp.Report())

	if !reflect.DeepEqual(er, sr) {
		t.Fatalf("all-live sampled report diverged from exact:\nexact   %+v\nsampled %+v", er.Total, sr.Total)
	}
}

// TestSampledEndToEnd runs the full pipeline — profile pass, plan, measure
// pass — and checks that architectural counters are exact while
// extrapolated probe counters stay within a loose tolerance on a cleanly
// periodic stream.
func TestSampledEndToEnd(t *testing.T) {
	exact := perf.New()
	driveSynthetic(exact)
	er := exact.Report()

	p := perf.New()
	// 8K-op intervals resolve the synthetic's ~100K-op phase blocks cleanly;
	// coarser grids straddle block boundaries and the mixed intervals blur
	// the cluster shapes.
	const interval = 8 << 10
	if err := p.BeginSampleProfile(interval); err != nil {
		t.Fatal(err)
	}
	driveSynthetic(p)
	sigs, err := p.FinishSampleProfile()
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) < 16 {
		t.Fatalf("profile pass yielded only %d intervals", len(sigs))
	}
	plan, err := phase.BuildPlan(sigs, phase.Config{IntervalOps: interval, Phases: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Clustered {
		t.Fatal("expected a clustered plan for a long stream")
	}
	if live, n := plan.LiveIntervals(), plan.Intervals(); live >= n {
		t.Fatalf("plan simulates all %d intervals — nothing sampled", n)
	}

	p.Reset()
	if err := p.BeginSampleWarm(plan); err != nil {
		t.Fatal(err)
	}
	driveSynthetic(p)
	ckpts, err := p.FinishSampleWarm()
	if err != nil {
		t.Fatal(err)
	}

	p.Reset()
	if err := p.BeginSampleMeasure(plan, ckpts); err != nil {
		t.Fatal(err)
	}
	driveSynthetic(p)
	sr := p.Report()

	// Architectural counters never extrapolate: they must match exactly.
	if er.Total.Ops != sr.Total.Ops || er.Total.Branches != sr.Total.Branches ||
		er.Total.Taken != sr.Total.Taken || er.Total.Loads != sr.Total.Loads ||
		er.Total.Stores != sr.Total.Stores || er.Total.LongOps != sr.Total.LongOps {
		t.Fatalf("architectural counters diverged:\nexact   %+v\nsampled %+v", er.Total, sr.Total)
	}
	diff := perf.ReportError(er, sr)
	for _, v := range diff.Violations(perf.DefaultTolerance()) {
		t.Errorf("counter %s: exact %.0f sampled %.0f rel %.4f exceeds its tier budget %.2f",
			v.Name, v.Exact, v.Sampled, v.Rel, perf.DefaultTolerance().For(v.Events))
	}
}

// TestSampledDeterministic proves two complete sampled runs of the same
// stream produce byte-identical reports and identical plans.
func TestSampledDeterministic(t *testing.T) {
	run := func() (*perf.SamplePlan, perf.Report) {
		p := perf.New()
		const interval = 64 << 10
		if err := p.BeginSampleProfile(interval); err != nil {
			t.Fatal(err)
		}
		driveSynthetic(p)
		sigs, err := p.FinishSampleProfile()
		if err != nil {
			t.Fatal(err)
		}
		plan, err := phase.BuildPlan(sigs, phase.Config{IntervalOps: interval, Phases: 4})
		if err != nil {
			t.Fatal(err)
		}
		p.Reset()
		if err := p.BeginSampleWarm(plan); err != nil {
			t.Fatal(err)
		}
		driveSynthetic(p)
		ckpts, err := p.FinishSampleWarm()
		if err != nil {
			t.Fatal(err)
		}
		p.Reset()
		if err := p.BeginSampleMeasure(plan, ckpts); err != nil {
			t.Fatal(err)
		}
		driveSynthetic(p)
		return plan, snapshot(p.Report())
	}
	plan1, r1 := run()
	plan2, r2 := run()
	if !reflect.DeepEqual(plan1, plan2) {
		t.Fatal("two profile passes built different plans")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("two sampled measure passes produced different reports")
	}
}

// TestSampledProfilePassProbesNothing: the signature pass must leave every
// simulator-derived counter at zero — it is the cheap pass.
func TestSampledProfilePassProbesNothing(t *testing.T) {
	p := perf.New()
	if err := p.BeginSampleProfile(64 << 10); err != nil {
		t.Fatal(err)
	}
	driveSynthetic(p)
	r := p.Report()
	if r.Total.Mispredicts != 0 || r.Total.L2Hits != 0 || r.Total.LLCHits != 0 ||
		r.Total.MemHits != 0 || r.Total.TLBMisses != 0 || r.Total.ICMisses != 0 ||
		r.Total.ITLBMisses != 0 {
		t.Fatalf("profile pass produced probe outcomes: %+v", r.Total)
	}
	if r.Total.Ops == 0 || r.Total.Branches == 0 {
		t.Fatal("profile pass lost architectural counters")
	}
	if _, err := p.FinishSampleProfile(); err != nil {
		t.Fatal(err)
	}
}

func TestSampledModeGuards(t *testing.T) {
	if err := perf.NewWithOptions(perf.Options{Stride: 4}).BeginSampleProfile(1 << 10); err == nil {
		t.Fatal("stride > 1 must be rejected")
	}
	if err := perf.NewWithOptions(perf.Options{Reference: true}).BeginSampleProfile(1 << 10); err == nil {
		t.Fatal("reference path must be rejected")
	}
	p := perf.New()
	if err := p.BeginSampleProfile(1 << 10); err != nil {
		t.Fatal(err)
	}
	if err := p.BeginSampleMeasure(&perf.SamplePlan{IntervalOps: 1 << 10}, nil); err == nil {
		t.Fatal("nested sampled passes must be rejected")
	}
	p = perf.New()
	bad := &perf.SamplePlan{IntervalOps: 1 << 10, Weights: []uint32{0, 1}}
	if err := p.BeginSampleMeasure(bad, nil); err == nil {
		t.Fatal("a plan skipping interval 0 must be rejected")
	}
	gap := &perf.SamplePlan{IntervalOps: 1 << 10, Weights: []uint32{1, 0, 1}}
	if err := p.BeginSampleMeasure(gap, nil); err == nil {
		t.Fatal("a plan with a dead→live edge must demand warm-pass checkpoints")
	}
	if err := p.BeginSampleProfile(0); err == nil {
		t.Fatal("zero interval must be rejected")
	}
	if _, err := perf.New().FinishSampleProfile(); err == nil {
		t.Fatal("finish without begin must be rejected")
	}
	if _, err := perf.New().FinishSampleWarm(); err == nil {
		t.Fatal("finish warm without begin must be rejected")
	}
}

// TestReportErrorFloorsSmallCounters: a tiny absolute wobble on a counter
// near zero must not dominate the diff.
func TestReportErrorFloorsSmallCounters(t *testing.T) {
	exact := perf.New()
	driveSynthetic(exact)
	er := exact.Report()
	sr := er
	sr.Total.LongOps += 2 // tiny absolute error on a small counter
	d := perf.ReportError(er, sr)
	for _, c := range d.Counters {
		if c.Name == "long_ops" {
			continue
		}
		if c.Rel != 0 {
			t.Fatalf("unexpected error on %s: %v", c.Name, c.Rel)
		}
	}
	if !d.Within(0.02) && float64(er.Total.LongOps) > 2/(0.02) {
		t.Fatalf("floored relative error should pass a 2%% gate, got %+v", d.Max())
	}
}
