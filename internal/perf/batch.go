package perf

import "repro/internal/uarch"

// Batched event APIs. Each call is *defined* by its per-event decomposition
// (stated in its doc comment) and is bit-identical to it in every Report
// field; benchmark kernels use the batched forms on their hottest inner
// loops to shed per-event call and bookkeeping overhead, and to let the
// same-line memo (see classifyLoad) collapse runs of consecutive same-line
// accesses into a single hierarchy probe.
//
// Two conditions force the literal per-event fallback:
//
//   - Stride > 1: the sampling phase (memTick/brTick) must advance exactly
//     as the decomposition would advance it.
//   - Options.Reference: the reference path is the retained pre-optimization
//     event path, which had no batched forms.
//
// Phase-sampled passes (see sampled.go) keep the batched forms but handle
// them at batch granularity: the whole batch commits to the interval that
// is current at its start — probed in live intervals, counted only in dead
// ones — and any interval boundaries it spans fire after its ops land.
// Both the profile and the measure pass advance the interval clock through
// the identical batch calls, so boundaries fall at the same op positions
// and the plan's interval indices line up.
//
// Events on the three independent simulator channels — fetch (Ops/LongOps →
// L1I/ITLB), data (Load/Store → hierarchy) and branch (Branch → predictor)
// — only order within their own channel; fused calls such as OpsBranch may
// therefore reorder across channels and still report identically.

// LoadRange records n loads at base, base+stride, ..., base+(n-1)*stride:
// exactly `for k := 0..n-1 { Load(base + k*stride) }`, with the per-load
// bookkeeping hoisted out of the loop.
func (p *Profiler) LoadRange(base, stride uint64, n uint64) {
	if p.stride != 1 || p.ref != nil {
		for k := uint64(0); k < n; k++ {
			p.Load(base + k*stride)
		}
		return
	}
	m := p.current
	m.loads += n
	m.ops += n
	if s := p.samp; s != nil {
		if !s.profiling {
			if s.warming {
				m.sLoads += n
				for k := uint64(0); k < n; k++ {
					p.classifyLoad(m, base+k*stride)
				}
			} else if s.live {
				s.touch(m)
				for k := uint64(0); k < n; k++ {
					p.classifyLoadScratch(m, base+k*stride)
				}
			}
		}
		p.sampAdvance(n)
		return
	}
	m.sLoads += n
	for k := uint64(0); k < n; k++ {
		p.classifyLoad(m, base+k*stride)
	}
}

// StoreRange records n stores at base, base+stride, ...: exactly
// `for k := 0..n-1 { Store(base + k*stride) }`.
func (p *Profiler) StoreRange(base, stride uint64, n uint64) {
	if p.stride != 1 || p.ref != nil {
		for k := uint64(0); k < n; k++ {
			p.Store(base + k*stride)
		}
		return
	}
	m := p.current
	m.stores += n
	m.ops += n
	if s := p.samp; s != nil {
		if !s.profiling {
			if s.warming {
				for k := uint64(0); k < n; k++ {
					p.storeProbe(m, base+k*stride)
				}
			} else if s.live {
				s.touch(m)
				for k := uint64(0); k < n; k++ {
					p.storeProbeScratch(m, base+k*stride)
				}
			}
		}
		p.sampAdvance(n)
		return
	}
	for k := uint64(0); k < n; k++ {
		p.storeProbe(m, base+k*stride)
	}
}

// LoadStore records the read-modify-write idiom of stencil and solver
// kernels: exactly `Load(addr); Store(addr)`. The store's probe is always
// coalesced by the memo — the load just made the line MRU.
func (p *Profiler) LoadStore(addr uint64) {
	if p.stride != 1 || p.ref != nil {
		p.Load(addr)
		p.Store(addr)
		return
	}
	m := p.current
	m.loads++
	m.stores++
	m.ops += 2
	if s := p.samp; s != nil {
		if !s.profiling {
			if s.warming {
				m.sLoads++
				p.classifyLoad(m, addr)
			} else if s.live {
				s.touch(m)
				p.classifyLoadScratch(m, addr)
			}
		}
		p.sampAdvance(2)
		return
	}
	m.sLoads++
	p.classifyLoad(m, addr)
}

// LoadStoreRange records n load/store pairs at base, base+stride, ...:
// exactly `for k := 0..n-1 { Load(base + k*stride); Store(base + k*stride) }`.
func (p *Profiler) LoadStoreRange(base, stride uint64, n uint64) {
	if p.stride != 1 || p.ref != nil {
		for k := uint64(0); k < n; k++ {
			addr := base + k*stride
			p.Load(addr)
			p.Store(addr)
		}
		return
	}
	m := p.current
	m.loads += n
	m.stores += n
	m.ops += 2 * n
	if s := p.samp; s != nil {
		if !s.profiling {
			if s.warming {
				m.sLoads += n
				for k := uint64(0); k < n; k++ {
					p.classifyLoad(m, base+k*stride)
				}
			} else if s.live {
				s.touch(m)
				for k := uint64(0); k < n; k++ {
					p.classifyLoadScratch(m, base+k*stride)
				}
			}
		}
		p.sampAdvance(2 * n)
		return
	}
	m.sLoads += n
	for k := uint64(0); k < n; k++ {
		p.classifyLoad(m, base+k*stride)
	}
}

// OpsBranch fuses the ubiquitous "do work, then branch on its result"
// kernel step: exactly `Ops(n); Branch(site, taken)` in one call.
func (p *Profiler) OpsBranch(n uint64, site uint64, taken bool) {
	if p.ref != nil {
		p.Ops(n)
		p.Branch(site, taken)
		return
	}
	m := p.current
	m.ops += n + 1 // n work ops plus the branch itself retiring
	m.branches++
	if taken {
		m.taken++
	}
	if s := p.samp; s != nil {
		if s.profiling {
			s.cur[sigBucket(m.codeBase+site*8)]++
		} else if s.warming {
			p.fetch(m, n)
			m.sBranches++
			if !p.observe(m.codeBase+site*8, taken) {
				m.sMispredicts++
			}
		} else if s.live {
			s.touch(m)
			p.sampFetch(m, n)
			if !p.observe(m.codeBase+site*8, taken) {
				m.iMisp++
			}
		} else {
			advanceFetch(m, n)
		}
		p.sampAdvance(n + 1)
		return
	}
	p.fetch(m, n)
	if p.stride == 1 {
		m.sBranches++
		if !p.observe(m.codeBase+site*8, taken) {
			m.sMispredicts++
		}
		return
	}
	p.brTick++
	if p.brTick >= p.stride {
		p.brTick = 0
		m.sBranches++
		if !p.observe(m.codeBase+site*8, taken) {
			m.sMispredicts++
		}
	}
}

// classifyLoad probes the hierarchy for one sampled load and folds the
// outcome into the method's sampled counters. On the optimized path a
// repeat of the last probed line is skipped: it is a guaranteed L1+DTLB MRU
// hit (same line ⇒ same page; touching an MRU way of a true-LRU set is the
// identity; an L1 hit never reaches L2/LLC), and HitL1 without a TLB miss
// increments nothing here.
func (p *Profiler) classifyLoad(m *methodRecord, addr uint64) {
	if line := addr >> p.memShift; p.ref == nil {
		if line == p.lastData {
			return
		}
		p.lastData = line
	}
	res, tlbMiss := p.memAccess(addr)
	if tlbMiss {
		m.sTLBMiss++
	}
	switch res {
	case uarch.HitL2:
		m.sL2++
	case uarch.HitLLC:
		m.sLLC++
	case uarch.HitMemory:
		m.sMem++
	}
}

// storeProbe probes the hierarchy for one sampled store (TLB outcome only),
// with the same same-line memo as classifyLoad.
func (p *Profiler) storeProbe(m *methodRecord, addr uint64) {
	if line := addr >> p.memShift; p.ref == nil {
		if line == p.lastData {
			return
		}
		p.lastData = line
	}
	if _, tlbMiss := p.memAccess(addr); tlbMiss {
		m.sTLBMiss++
	}
}
