package perf

import (
	"reflect"
	"testing"
)

// stripTiming zeroes the fields that depend on the wall clock so two Reports
// of the same modeled execution compare equal.
func stripTiming(r Report) Report {
	r.WallTime = 0
	return r
}

// batchWorkload drives a profiler through a mixed event stream exercising
// every batched API. With batched=false it issues the exact per-event
// decomposition each batched call documents, so the two variants must
// produce bit-identical Reports.
func batchWorkload(p *Profiler, batched bool) {
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	p.Do("kernel", func() {
		for i := 0; i < 4000; i++ {
			base := next() % (16 << 20)
			stride := []uint64{1, 8, 64, 200}[i%4]
			n := next()%48 + 1
			taken := next()&3 != 0

			if batched {
				p.LoadRange(base, stride, n)
				p.OpsBranch(6, 9, taken)
				p.StoreRange(base+8192, stride, n/2)
				p.LoadStore(base + 64)
				p.LoadStoreRange(base+4096, stride, n/3)
			} else {
				for k := uint64(0); k < n; k++ {
					p.Load(base + k*stride)
				}
				p.Ops(6)
				p.Branch(9, taken)
				for k := uint64(0); k < n/2; k++ {
					p.Store(base + 8192 + k*stride)
				}
				p.Load(base + 64)
				p.Store(base + 64)
				for k := uint64(0); k < n/3; k++ {
					addr := base + 4096 + k*stride
					p.Load(addr)
					p.Store(addr)
				}
			}
			// Interleave non-batched events so fetch and sampling state is
			// exercised between batches too.
			p.LongOps(2)
			p.Branch(11, i%5 != 0)
		}
	})
}

// TestBatchedMatchesPerEvent holds every batched API to its documented
// per-event decomposition: Reports must be bit-identical, on both the
// coalescing stride-1 path and the fallback sampled path.
func TestBatchedMatchesPerEvent(t *testing.T) {
	for _, stride := range []int{1, 4} {
		for _, reference := range []bool{false, true} {
			opts := Options{Stride: stride, Reference: reference}
			pb := NewWithOptions(opts)
			batchWorkload(pb, true)
			pe := NewWithOptions(opts)
			batchWorkload(pe, false)
			rb, re := stripTiming(pb.Report()), stripTiming(pe.Report())
			if !reflect.DeepEqual(rb, re) {
				t.Errorf("stride=%d reference=%v: batched report diverges from per-event\nbatched:   %+v\nper-event: %+v",
					stride, reference, rb.Total, re.Total)
			}
		}
	}
}

// TestReferencePathBitIdentical replays the same event stream through the
// optimized simulators and the retained pre-optimization ones: the whole
// point of the rewrite is that Reports do not change.
func TestReferencePathBitIdentical(t *testing.T) {
	for _, stride := range []int{1, 4} {
		for _, batched := range []bool{false, true} {
			opt := NewWithOptions(Options{Stride: stride})
			batchWorkload(opt, batched)
			ref := NewWithOptions(Options{Stride: stride, Reference: true})
			batchWorkload(ref, batched)
			ro, rr := stripTiming(opt.Report()), stripTiming(ref.Report())
			if !reflect.DeepEqual(ro, rr) {
				t.Errorf("stride=%d batched=%v: optimized report diverges from reference\noptimized: %+v\nreference: %+v",
					stride, batched, ro.Total, rr.Total)
			}
		}
	}
}

// TestProfilerReset holds a reused profiler to the fresh-profiler contract:
// after Reset, an identical event stream must yield an identical Report.
func TestProfilerReset(t *testing.T) {
	for _, reference := range []bool{false, true} {
		p := NewWithOptions(Options{Stride: 2, Reference: reference})
		batchWorkload(p, true)
		first := stripTiming(p.Report())
		p.Reset()
		batchWorkload(p, true)
		second := stripTiming(p.Report())
		if !reflect.DeepEqual(first, second) {
			t.Errorf("reference=%v: report after Reset diverges\nfirst:  %+v\nsecond: %+v",
				reference, first.Total, second.Total)
		}
	}
}

// TestStrideSamplingTolerance checks that stride sub-sampling keeps the
// scaled memory-side outcome counts within a factor of the exact stride-1
// simulation, for per-event and batched issue alike.
func TestStrideSamplingTolerance(t *testing.T) {
	run := func(stride int, batched bool) (l2, mem, tlb uint64) {
		p := NewWithOptions(Options{Stride: stride})
		state := uint64(7)
		p.Do("m", func() {
			for i := 0; i < 30000; i++ {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				addr := state % (64 << 20)
				// Page-distinct accesses: stride sub-sampling picks a
				// uniform subset, so scaling back up is unbiased. (Runs of
				// same-page accesses would bias the TLB estimate: sampling
				// preferentially drops the guaranteed-hit repeats.)
				if batched {
					p.LoadRange(addr, 5<<10, 4)
				} else {
					for k := uint64(0); k < 4; k++ {
						p.Load(addr + k*(5<<10))
					}
				}
			}
		})
		rep := p.Report()
		return rep.Total.L2Hits, rep.Total.MemHits, rep.Total.TLBMisses
	}
	for _, batched := range []bool{false, true} {
		el2, emem, etlb := run(1, batched)
		sl2, smem, stlb := run(8, batched)
		if emem == 0 || etlb == 0 {
			t.Fatalf("batched=%v: expected misses on a streaming working set (mem=%d tlb=%d)", batched, emem, etlb)
		}
		check := func(name string, exact, sampled uint64) {
			if exact == 0 {
				return
			}
			ratio := float64(sampled) / float64(exact)
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("batched=%v: stride-8 %s %d vs exact %d (ratio %v)", batched, name, sampled, exact, ratio)
			}
		}
		check("l2 hits", el2, sl2)
		check("mem hits", emem, smem)
		check("tlb misses", etlb, stlb)
	}
}
