package perf

import (
	"math"
	"sort"
)

// ReportError quantifies how far a sampled Report strays from the exact
// Report of the same workload. It is the validator behind `make
// diff-sampled`: the tolerance is enforced per counter, not on an
// aggregate, because extrapolation errors concentrate — a sampled run can
// match cycles to 0.1% while being 30% wrong on LLC hits, and an aggregate
// bound would wave that through (see DESIGN.md §16).

// DefaultErrorFloor is the significance floor of the relative error, as a
// fraction of total retired ops: a counter whose exact value is below
// floor×ops (fewer than ten events per million ops at the default) is
// noise — its relative error is computed against the floor instead, so a
// 3-event counter being off by 2 does not fail a 2% gate.
const DefaultErrorFloor = 1e-5

// fractionFloor is the corresponding floor for top-down fractions, which
// live in [0,1]: categories under 1% of slots are compared against 0.01.
const fractionFloor = 0.01

// CounterError is one per-counter row of a ReportDiff.
type CounterError struct {
	Name    string  `json:"name"`
	Exact   float64 `json:"exact"`
	Sampled float64 `json:"sampled"`
	// Rel is |Sampled-Exact| / max(Exact, floor).
	Rel float64 `json:"rel"`
	// Events is the exact event count behind the row: Exact itself for
	// counter rows, and the slot count the fraction stands for on top-down
	// rows. The tiered gate keys its error budget on it.
	Events float64 `json:"events"`
}

// ReportDiff is the per-counter relative error of a sampled Report against
// its exact counterpart.
type ReportDiff struct {
	Counters []CounterError `json:"counters"`
}

// Max returns the worst row of the diff.
func (d ReportDiff) Max() CounterError {
	var worst CounterError
	for _, c := range d.Counters {
		if c.Rel > worst.Rel {
			worst = c
		}
	}
	return worst
}

// Within reports whether every counter's relative error is at most tol.
func (d ReportDiff) Within(tol float64) bool { return d.Max().Rel <= tol }

// Tier boundaries of the sampled gate, in exact event counts.
const (
	// DenseMin is the event count above which a counter is statistically
	// dense: enough events land in every live interval that extrapolation
	// error is dominated by phase representativeness, not sampling noise.
	DenseMin = 128 << 10
	// MidMin bounds the middle tier: counters with tens of thousands of
	// events, where per-interval variance is material but a few hundred
	// live intervals still average it down.
	MidMin = 32 << 10
	// SparseMin is the gate's significance cutoff: a counter with fewer
	// exact events than this averages only tens of events per live
	// interval, so its relative error is shot noise — the measured matrix
	// has 4K-event llc_hits cells off by 87% under plans that hold every
	// dense counter — and its contribution to modeled cycles is
	// noise-level (a few thousand LLC hits are hundredths of a percent of
	// a multi-million-cycle run). Rows under the cutoff are not gated on
	// relative error.
	SparseMin = 16 << 10
)

// Tolerance is the density-tiered error budget of the sampled gate.
// Extrapolation error follows the central limit theorem — relative error
// scales like CV/sqrt(live samples) — so the accuracy a plan can achieve on
// a counter is set by how many events the exact run retires: cycles
// (millions of events) extrapolate to low single digits, while a counter
// with a few thousand bursty events carries double-digit sampling noise no
// clustering can remove. A single flat tolerance would either wave dense
// counters through at sparse-counter slack or fail every sparse counter;
// the tiers hold each counter to the accuracy its density makes possible.
type Tolerance struct {
	Dense  float64 `json:"dense"`  // counters with >= DenseMin exact events
	Mid    float64 `json:"mid"`    // counters with >= MidMin exact events
	Sparse float64 `json:"sparse"` // counters with >= SparseMin; below is ungated
}

// DefaultTolerance is the gate enforced by `make diff-sampled`: 15% on
// dense counters, 25% on mid-density ones, 40% on sparse ones; rows under
// SparseMin events are ungated. The budgets were set from the measured
// benchmark × workload error matrix, whose errors are deterministic (every
// pass of every pair reproduces bit-identically, so the gate's margin is
// regression headroom, not flake allowance). Most dense counters land
// within 5%; the 15% budget is set by povray's mispredicts, whose
// ray-geometry-dependent branch outcomes drift within BBV-identical
// intervals (measured 9.9% on refrate, 14.4% worst-case on an Alberta
// workload, insensitive to both stratum size and cluster count).
func DefaultTolerance() Tolerance {
	return Tolerance{Dense: 0.15, Mid: 0.25, Sparse: 0.40}
}

// For returns the budget for a row backed by the given exact event count.
// Rows under SparseMin events return +Inf (ungated).
func (t Tolerance) For(events float64) float64 {
	switch {
	case events >= DenseMin:
		return t.Dense
	case events >= MidMin:
		return t.Mid
	case events >= SparseMin:
		return t.Sparse
	default:
		return math.Inf(1)
	}
}

// Violations returns the rows whose relative error exceeds their tier's
// budget, worst first. An empty slice means the sampled run passes.
func (d ReportDiff) Violations(t Tolerance) []CounterError {
	var out []CounterError
	for _, c := range d.Counters {
		if c.Rel > t.For(c.Events) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel > out[j].Rel })
	return out
}

// ReportError diffs a sampled Report against the exact Report of the same
// benchmark execution, covering every event counter, the pipeline-slot
// totals, modeled cycles, and the top-down fractions.
func ReportError(exact, sampled Report) ReportDiff {
	countFloor := float64(exact.Total.Ops) * DefaultErrorFloor
	if countFloor < 1 {
		countFloor = 1
	}
	var d ReportDiff
	addEv := func(name string, e, s, floor, events float64) {
		den := e
		if den < floor {
			den = floor
		}
		rel := 0.0
		if e != s {
			diff := s - e
			if diff < 0 {
				diff = -diff
			}
			rel = diff / den
		}
		d.Counters = append(d.Counters, CounterError{Name: name, Exact: e, Sampled: s, Rel: rel, Events: events})
	}
	add := func(name string, e, s, floor float64) { addEv(name, e, s, floor, e) }
	u := func(v uint64) float64 { return float64(v) }

	te, ts := exact.Total, sampled.Total
	add("ops", u(te.Ops), u(ts.Ops), countFloor)
	add("long_ops", u(te.LongOps), u(ts.LongOps), countFloor)
	add("branches", u(te.Branches), u(ts.Branches), countFloor)
	add("taken", u(te.Taken), u(ts.Taken), countFloor)
	add("mispredicts", u(te.Mispredicts), u(ts.Mispredicts), countFloor)
	add("loads", u(te.Loads), u(ts.Loads), countFloor)
	add("stores", u(te.Stores), u(ts.Stores), countFloor)
	add("l2_hits", u(te.L2Hits), u(ts.L2Hits), countFloor)
	add("llc_hits", u(te.LLCHits), u(ts.LLCHits), countFloor)
	add("mem_hits", u(te.MemHits), u(ts.MemHits), countFloor)
	add("tlb_misses", u(te.TLBMisses), u(ts.TLBMisses), countFloor)
	add("ic_misses", u(te.ICMisses), u(ts.ICMisses), countFloor)
	add("itlb_misses", u(te.ITLBMisses), u(ts.ITLBMisses), countFloor)

	add("slots_retiring", u(exact.Slots.Retiring), u(sampled.Slots.Retiring), countFloor)
	add("slots_bad_spec", u(exact.Slots.BadSpec), u(sampled.Slots.BadSpec), countFloor)
	add("slots_front_end", u(exact.Slots.FrontEnd), u(sampled.Slots.FrontEnd), countFloor)
	add("slots_back_end", u(exact.Slots.BackEnd), u(sampled.Slots.BackEnd), countFloor)
	add("cycles", u(exact.Cycles), u(sampled.Cycles), countFloor)

	// Top-down rows are fractions in [0,1]; the event count behind each is
	// its share of the exact slot total, so the tiered gate holds a 40%
	// back-end fraction to the dense budget and a 0.2% bad-spec sliver only
	// to the sparse one.
	slots := u(exact.Slots.Retiring) + u(exact.Slots.BadSpec) + u(exact.Slots.FrontEnd) + u(exact.Slots.BackEnd)
	addEv("topdown_front_end", exact.TopDown.FrontEnd, sampled.TopDown.FrontEnd, fractionFloor, exact.TopDown.FrontEnd*slots)
	addEv("topdown_back_end", exact.TopDown.BackEnd, sampled.TopDown.BackEnd, fractionFloor, exact.TopDown.BackEnd*slots)
	addEv("topdown_bad_spec", exact.TopDown.BadSpec, sampled.TopDown.BadSpec, fractionFloor, exact.TopDown.BadSpec*slots)
	addEv("topdown_retiring", exact.TopDown.Retiring, sampled.TopDown.Retiring, fractionFloor, exact.TopDown.Retiring*slots)
	return d
}
