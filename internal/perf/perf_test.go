package perf

import (
	"math"
	"testing"

	"repro/internal/uarch"
)

func TestProfilerBasicAttribution(t *testing.T) {
	p := New()
	p.Do("alpha", func() { p.Ops(1000) })
	p.Do("beta", func() { p.Ops(3000) })
	rep := p.Report()

	if rep.Total.Ops != 4000 {
		t.Errorf("total ops = %d, want 4000", rep.Total.Ops)
	}
	if len(rep.Methods) < 2 {
		t.Fatalf("methods = %d, want ≥2", len(rep.Methods))
	}
	if rep.Methods[0].Name != "beta" {
		t.Errorf("hottest method = %q, want beta", rep.Methods[0].Name)
	}
	ca, cb := rep.Coverage["alpha"], rep.Coverage["beta"]
	if cb <= ca {
		t.Errorf("coverage beta %v should exceed alpha %v", cb, ca)
	}
	sum := 0.0
	for _, v := range rep.Coverage {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("coverage sums to %v, want 1", sum)
	}
}

func TestProfilerNestedRegions(t *testing.T) {
	p := New()
	p.Enter("outer")
	p.Ops(100)
	p.Enter("inner")
	p.Ops(900)
	p.Leave()
	p.Ops(100)
	p.Leave()
	rep := p.Report()
	if rep.Coverage["inner"] <= rep.Coverage["outer"] {
		t.Errorf("inner self-coverage %v should exceed outer %v",
			rep.Coverage["inner"], rep.Coverage["outer"])
	}
}

func TestProfilerUnbalancedLeavePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Leave without Enter should panic")
		}
	}()
	New().Leave()
}

func TestProfilerReportWithOpenRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Report with open region should panic")
		}
	}()
	p := New()
	p.Enter("open")
	p.Ops(1)
	p.Report()
}

func TestProfilerTopDownFractionsSumToOne(t *testing.T) {
	p := New()
	p.Do("work", func() {
		for i := 0; i < 3000; i++ {
			p.Ops(10)
			p.Branch(1, i%7 != 0)
			p.Load(uint64(i) * 64 % 4096)
		}
	})
	rep := p.Report()
	if s := rep.TopDown.Sum(); math.Abs(s-1) > 1e-9 {
		t.Errorf("topdown sum = %v, want 1", s)
	}
	if rep.TopDown.Retiring <= 0 {
		t.Error("retiring fraction should be positive")
	}
}

func TestProfilerBranchBehaviourMatters(t *testing.T) {
	// Predictable branches should yield less bad speculation than random
	// ones with identical counts.
	run := func(pattern func(i int) bool) float64 {
		p := New()
		p.Do("b", func() {
			for i := 0; i < 20000; i++ {
				p.Branch(0, pattern(i))
				p.Ops(4)
			}
		})
		return p.Report().TopDown.BadSpec
	}
	predictable := run(func(i int) bool { return true })
	// Pseudo-random, unlearnable pattern.
	state := uint64(88172645463325252)
	random := run(func(i int) bool {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state&1 == 0
	})
	if random <= predictable {
		t.Errorf("random badspec %v should exceed predictable %v", random, predictable)
	}
}

func TestProfilerMemoryBehaviourMatters(t *testing.T) {
	// A large streaming working set should be more back-end bound than a
	// tiny resident one.
	run := func(span uint64) float64 {
		p := New()
		p.Do("m", func() {
			for i := uint64(0); i < 40000; i++ {
				p.Load((i * 64) % span)
				p.Ops(4)
			}
		})
		return p.Report().TopDown.BackEnd
	}
	small := run(4 << 10)
	large := run(64 << 20)
	if large <= small {
		t.Errorf("streaming backend %v should exceed resident %v", large, small)
	}
}

func TestProfilerCodeFootprintMatters(t *testing.T) {
	// Alternating between many large-footprint methods should be more
	// front-end bound than spinning in one small method.
	run := func(methods int, footprint uint64) float64 {
		p := New()
		names := make([]string, methods)
		for i := range names {
			names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
			p.SetFootprint(names[i], footprint)
		}
		for round := 0; round < 200; round++ {
			for _, n := range names {
				p.Do(n, func() { p.Ops(256) })
			}
		}
		return p.Report().TopDown.FrontEnd
	}
	hot := run(1, 512)
	flat := run(64, 8<<10)
	if flat <= hot {
		t.Errorf("flat-profile frontend %v should exceed hot-loop %v", flat, hot)
	}
}

func TestProfilerStrideScaling(t *testing.T) {
	// With stride sampling, scaled mispredict counts should be within a
	// reasonable factor of the exact ones.
	run := func(stride int) uint64 {
		p := NewWithOptions(Options{Stride: stride})
		state := uint64(12345)
		p.Do("s", func() {
			for i := 0; i < 50000; i++ {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				p.Branch(0, state&1 == 0)
			}
		})
		return p.Report().Total.Mispredicts
	}
	exact := run(1)
	sampled := run(8)
	if exact == 0 {
		t.Fatal("expected mispredicts on random branches")
	}
	ratio := float64(sampled) / float64(exact)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("stride-8 mispredicts %d vs exact %d (ratio %v)", sampled, exact, ratio)
	}
}

func TestProfilerDeterminism(t *testing.T) {
	run := func() Report {
		p := New()
		p.Do("d", func() {
			for i := 0; i < 5000; i++ {
				p.Ops(3)
				p.Branch(2, i%3 == 0)
				p.Load(uint64(i*97) % (1 << 20))
				p.Store(uint64(i*13) % (1 << 16))
			}
		})
		return p.Report()
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles {
		t.Errorf("cycles differ across identical runs: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.TopDown != b.TopDown {
		t.Errorf("topdown differs: %+v vs %+v", a.TopDown, b.TopDown)
	}
}

func TestProfilerLongOps(t *testing.T) {
	p := New()
	p.Do("fp", func() { p.LongOps(1000) })
	rep := p.Report()
	if rep.Total.LongOps != 1000 {
		t.Errorf("long ops = %d", rep.Total.LongOps)
	}
	if rep.TopDown.BackEnd <= 0 {
		t.Error("long ops should create back-end pressure")
	}
}

func TestProfilerCustomModel(t *testing.T) {
	m := uarch.DefaultModel()
	m.MispredictPenalty = 100
	p := NewWithOptions(Options{Model: m})
	p.Do("x", func() {
		for i := 0; i < 1000; i++ {
			p.Branch(0, i%2 == 0)
		}
	})
	q := New()
	q.Do("x", func() {
		for i := 0; i < 1000; i++ {
			q.Branch(0, i%2 == 0)
		}
	})
	// Same behaviour, harsher penalty → more bad-spec slots.
	if p.Report().Slots.BadSpec < q.Report().Slots.BadSpec {
		t.Error("higher penalty should not reduce bad-spec slots")
	}
}

func TestModeledSeconds(t *testing.T) {
	if s := ModeledSeconds(uint64(ClockHz)); math.Abs(s-1) > 1e-9 {
		t.Errorf("ModeledSeconds(clock) = %v, want 1", s)
	}
}

func TestReportModeledNS(t *testing.T) {
	p := New()
	p.Do("w", func() { p.Ops(34000) })
	rep := p.Report()
	wantNS := float64(rep.Cycles) / ClockHz * 1e9
	if math.Abs(rep.ModeledNS-wantNS) > 1e-6 {
		t.Errorf("ModeledNS = %v, want %v", rep.ModeledNS, wantNS)
	}
}
