package perf

import (
	"fmt"

	"repro/internal/uarch"
)

// Phase-sampled simulation (SimPoint-style, with checkpoint warming). Exact
// simulation routes every event of every repetition through the modeled
// simulators; sampled mode simulates only representative instruction
// intervals and extrapolates:
//
//  1. Profile pass (BeginSampleProfile): the event stream is sliced into
//     fixed-size intervals of IntervalOps retired micro-ops and each
//     interval accumulates a basic-block-vector-style signature — a
//     SigDims-bucket frequency histogram of branch sites and method
//     entries. No simulator is probed at all, so the pass costs little
//     more than the benchmark's own compute.
//  2. Plan (internal/phase): signatures are clustered with k-medoids; the
//     medoid of each cluster is simulated with the cluster's population as
//     its weight. The first and last intervals are always simulated with
//     weight 1 — the first captures the cold-start transient exactly, the
//     last the tail — and each cluster's earliest interval is pinned live
//     so compulsory misses count exactly once.
//  3. Warm pass (BeginSampleWarm): one full-probe replay that counts
//     nothing but snapshots complete simulator state — caches, TLBs,
//     predictor, coalescing memos — at every boundary where a live
//     interval follows a dead one. It runs once per workload, at exact
//     cost, and its checkpoints are reused by every measure repetition.
//  4. Measure pass (BeginSampleMeasure): the same event stream replays;
//     architectural counters (ops, branches, loads, stores, taken) count
//     exactly everywhere, but simulator probes run only inside live
//     (weight > 0) intervals. Each dead→live transition first restores the
//     warm pass's checkpoint, so a live interval measures from exactly the
//     state the exact path would have — its probe outcomes are
//     bit-identical to the exact run's for that interval, and the only
//     sampling error left is how well each medoid represents its cluster.
//     Live probe outcomes accumulate in per-interval scratch counters and
//     fold into the report counters multiplied by the interval's weight,
//     extrapolating the skipped population.
//
// Warming policies without checkpoints were evaluated and rejected: state
// carry-over alone under-fills the LLC (hit counts measured 72% low on a
// cache-straining stream), and a fixed warm window of probed-but-uncounted
// predecessor intervals cannot be sized — the LLC needs a fixed number of
// probes to refill, not a fixed number of intervals (see DESIGN.md §16).
//
// Everything is deterministic: interval boundaries derive from exact op
// counts, signatures from hashed static sites, clustering is seeded
// deterministically, and the scratch fold walks an append-ordered slice —
// two sampled runs of the same workload are bit-identical (the harness
// asserts it). perf cannot import internal/cluster (it would cycle through
// report → core), so plan construction lives in internal/phase and the
// plan crosses back in as the dependency-free SamplePlan value.

// SigDims is the number of buckets in an interval signature. Branch sites
// and method entries hash into a fixed 64-bucket frequency vector — small
// enough that clustering hundreds of intervals is cheap, wide enough that
// distinct phases (different hot methods, different branch mixes) land in
// distinct buckets.
const SigDims = 64

// DefaultMaxIntervals bounds how many intervals a profile pass hands to the
// clusterer: internal/phase coarsens (merges adjacent pairs, doubling the
// effective interval size) until at most this many remain.
const DefaultMaxIntervals = 512

// DefaultSampleInterval is the default profiling interval in retired ops.
// It is deliberately small: paired with the DefaultMaxIntervals coarsening
// cap it puts every stream on a 256–512 interval grid — short streams keep
// the fine grid (which resolves their phase blocks), long ones coarsen to
// the cap — which the tuning sweep found to be the accuracy sweet spot.
const DefaultSampleInterval = 16 << 10

// IntervalSignature is the BBV-style frequency vector of one interval.
type IntervalSignature [SigDims]uint32

// sigBucket maps a static site identifier to its signature bucket with a
// 64-bit finalizer, so nearby sites spread across buckets.
func sigBucket(x uint64) int {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x & (SigDims - 1))
}

// enterSigWeight is the signature increment of one method entry. Entries
// are far rarer than branches, but a shift in the executing method mix is
// the strongest phase signal, so entries weigh more than single branches.
const enterSigWeight = 4

// SamplePlan tells a measure pass which intervals to simulate and how to
// extrapolate them. Weights[i] is interval i's extrapolation weight: 0
// skips the interval's probes entirely, w > 0 multiplies its probe
// outcomes by w at the interval boundary. Intervals at or beyond
// len(Weights) — possible only through event-count drift, which the
// harness's checksum comparison would catch — are simulated with weight 1.
type SamplePlan struct {
	// IntervalOps is the interval size in retired micro-ops. It may exceed
	// the profile pass's interval when internal/phase coarsened; boundaries
	// still align because coarsening multiplies by whole factors.
	IntervalOps uint64
	// Weights has one entry per interval of the stream.
	Weights []uint32
	// Phases is the cluster count the plan was built with (informational).
	Phases int
	// Clustered is false when the stream was too short to sample — every
	// weight is 1 and the measurement degenerates to exact simulation.
	Clustered bool
}

// liveAt reports whether interval i is simulated, and its weight.
func (pl *SamplePlan) liveAt(i int) (bool, uint32) {
	if i >= len(pl.Weights) {
		return true, 1
	}
	w := pl.Weights[i]
	return w > 0, w
}

// LiveIntervals counts the intervals a measure pass will fully simulate.
func (pl *SamplePlan) LiveIntervals() int {
	n := 0
	for _, w := range pl.Weights {
		if w > 0 {
			n++
		}
	}
	return n
}

// Intervals returns the total interval count of the plan.
func (pl *SamplePlan) Intervals() int { return len(pl.Weights) }

// restorePoints lists the intervals a measure pass restores state at: every
// live interval that follows a dead one. Live runs carry state naturally,
// and interval 0 starts from reset state in every pass.
func (pl *SamplePlan) restorePoints() []int {
	var pts []int
	for i := 1; i < len(pl.Weights); i++ {
		if pl.Weights[i] > 0 && pl.Weights[i-1] == 0 {
			pts = append(pts, i)
		}
	}
	return pts
}

// simCheckpoint is a complete probe-visible simulator snapshot: the three
// simulator channels plus the same-line coalescing memos (a memo mismatch
// would suppress or admit the first probe after a restore).
type simCheckpoint struct {
	mem       *uarch.HierarchyState
	l1i       *uarch.CacheState
	itlb      *uarch.CacheState
	tour      *uarch.TournamentState
	lastData  uint64
	lastFetch uint64
}

// SampleCheckpoints carries the warm pass's boundary snapshots to the
// measure passes. It is opaque outside perf; the harness only moves it
// from FinishSampleWarm to BeginSampleMeasure.
type SampleCheckpoints struct {
	intervalOps uint64
	byInterval  map[int]*simCheckpoint
}

// sampleMode distinguishes the three sampled passes.
type sampleMode uint8

const (
	sampProfile sampleMode = iota
	sampWarm
	sampMeasure
)

// sampState is the per-pass state of sampled mode; Profiler.samp is nil
// outside it (the exact hot path pays one predictable nil check per event,
// the same price the reference path already pays).
type sampState struct {
	intervalOps uint64
	mode        sampleMode
	profiling   bool // mode == sampProfile, kept flat for the hot path
	warming     bool // mode == sampWarm, likewise

	// Stream position: seq is the current interval index, opsInInterval
	// the retired ops inside it. Events commit to the interval current at
	// their start; boundary crossings fire after the event's ops land.
	seq           int
	opsInInterval uint64

	// Profile pass: cur accumulates the current interval's signature.
	sigs []IntervalSignature
	cur  IntervalSignature

	// Warm pass: checkpoints accumulates boundary snapshots at ckptAt
	// intervals (the plan's restore points).
	ckptAt map[int]bool
	ckpts  *SampleCheckpoints

	// Measure pass. Live intervals probe and count; dead intervals only
	// keep the architectural counters and the fetch offsets advancing.
	plan    *SamplePlan
	restore map[int]*simCheckpoint
	live    bool
	weight  uint32
	epoch   uint32
	touched []*methodRecord
	done    bool
}

// Sampled reports whether the profiler is currently in a sampled pass.
func (p *Profiler) Sampled() bool { return p.samp != nil }

// sampleModeError returns why this profiler cannot enter sampled mode, or
// nil. Sampling composes with neither stride sub-sampling (two extrapolation
// layers would compound) nor the reference path (whose simulators have no
// checkpoint support), and checkpointing requires the concrete default
// tournament predictor.
func (p *Profiler) sampleModeError() error {
	switch {
	case p.samp != nil:
		return fmt.Errorf("perf: already in a sampled pass")
	case p.ref != nil:
		return fmt.Errorf("perf: sampled mode is incompatible with the reference path")
	case p.stride != 1:
		return fmt.Errorf("perf: sampled mode requires stride 1 (got %d)", p.stride)
	case p.tour == nil:
		return fmt.Errorf("perf: sampled mode requires the default tournament predictor")
	}
	return nil
}

// BeginSampleProfile starts a signature-only profile pass. It must be
// called on a fresh or Reset profiler, before any events; until
// FinishSampleProfile the profiler counts architectural events and interval
// signatures but probes no simulator.
func (p *Profiler) BeginSampleProfile(intervalOps uint64) error {
	if err := p.sampleModeError(); err != nil {
		return err
	}
	if intervalOps == 0 {
		return fmt.Errorf("perf: sample interval must be >= 1 op")
	}
	p.samp = &sampState{intervalOps: intervalOps, mode: sampProfile, profiling: true}
	return nil
}

// FinishSampleProfile ends a profile pass and returns the per-interval
// signatures, including the final partial interval if it retired any ops.
// The profiler leaves sampled mode; Reset it before the next pass.
func (p *Profiler) FinishSampleProfile() ([]IntervalSignature, error) {
	s := p.samp
	if s == nil || s.mode != sampProfile {
		return nil, fmt.Errorf("perf: FinishSampleProfile without BeginSampleProfile")
	}
	sigs := s.sigs
	if s.opsInInterval > 0 {
		sigs = append(sigs, s.cur)
	}
	p.samp = nil
	return sigs, nil
}

// BeginSampleWarm starts the checkpoint-collection pass for plan. The pass
// probes every simulator exactly as an unsampled run would — its counters
// are complete but are conventionally discarded by the Reset before the
// measure pass — and snapshots simulator state at each of the plan's
// restore points. It must be called on a fresh or Reset profiler.
func (p *Profiler) BeginSampleWarm(plan *SamplePlan) error {
	if err := p.sampleModeError(); err != nil {
		return err
	}
	if plan == nil || plan.IntervalOps == 0 {
		return fmt.Errorf("perf: warm pass requires a plan with a nonzero interval")
	}
	s := &sampState{
		intervalOps: plan.IntervalOps,
		mode:        sampWarm,
		warming:     true,
		ckptAt:      make(map[int]bool),
		ckpts:       &SampleCheckpoints{intervalOps: plan.IntervalOps, byInterval: make(map[int]*simCheckpoint)},
	}
	for _, i := range plan.restorePoints() {
		s.ckptAt[i] = true
	}
	p.samp = s
	return nil
}

// FinishSampleWarm ends a warm pass and returns its checkpoints. The
// profiler leaves sampled mode; Reset it before the measure pass.
func (p *Profiler) FinishSampleWarm() (*SampleCheckpoints, error) {
	s := p.samp
	if s == nil || s.mode != sampWarm {
		return nil, fmt.Errorf("perf: FinishSampleWarm without BeginSampleWarm")
	}
	ckpts := s.ckpts
	p.samp = nil
	return ckpts, nil
}

// BeginSampleMeasure starts a measure pass following plan, restoring state
// from the warm pass's checkpoints at each dead→live transition. ckpts may
// be nil only for a plan with no dead→live transitions (an all-live plan).
// It must be called on a fresh or Reset profiler, before any events. The
// measurement is finalized by Report, which folds the pending interval's
// scratch.
func (p *Profiler) BeginSampleMeasure(plan *SamplePlan, ckpts *SampleCheckpoints) error {
	if err := p.sampleModeError(); err != nil {
		return err
	}
	if plan == nil || plan.IntervalOps == 0 {
		return fmt.Errorf("perf: measure pass requires a plan with a nonzero interval")
	}
	if len(plan.Weights) > 0 && plan.Weights[0] == 0 {
		return fmt.Errorf("perf: plan skips interval 0, which must be simulated (it carries the cold-start transient)")
	}
	restore := make(map[int]*simCheckpoint)
	for _, i := range plan.restorePoints() {
		if ckpts == nil {
			return fmt.Errorf("perf: plan restores at interval %d but no warm-pass checkpoints were supplied", i)
		}
		if ckpts.intervalOps != plan.IntervalOps {
			return fmt.Errorf("perf: checkpoints were taken at interval %d ops, plan uses %d", ckpts.intervalOps, plan.IntervalOps)
		}
		ck, ok := ckpts.byInterval[i]
		if !ok {
			return fmt.Errorf("perf: warm pass has no checkpoint for interval %d", i)
		}
		restore[i] = ck
	}
	s := &sampState{intervalOps: plan.IntervalOps, mode: sampMeasure, plan: plan, restore: restore, epoch: 1}
	s.live, s.weight = plan.liveAt(0)
	p.samp = s
	return nil
}

// sampAdvance retires n ops against the interval clock, firing boundary
// transitions. A single batched event may cross several boundaries.
func (p *Profiler) sampAdvance(n uint64) {
	s := p.samp
	s.opsInInterval += n
	for s.opsInInterval >= s.intervalOps {
		s.opsInInterval -= s.intervalOps
		switch s.mode {
		case sampProfile:
			s.sigs = append(s.sigs, s.cur)
			s.cur = IntervalSignature{}
			s.seq++
		case sampWarm:
			s.seq++
			if s.ckptAt[s.seq] {
				s.ckpts.byInterval[s.seq] = p.checkpointSims()
			}
		case sampMeasure:
			p.sampBoundary()
		}
	}
}

// sampBoundary handles one measure-pass interval transition: fold the
// finished live interval's scratch at its weight, take the next interval's
// phase, and on a dead→live edge restore the warm pass's snapshot so the
// live interval measures from exactly the simulator state the exact path
// would have. Between restore points state simply carries over, untouched.
func (p *Profiler) sampBoundary() {
	s := p.samp
	if s.live {
		s.fold()
	}
	s.seq++
	s.live, s.weight = s.plan.liveAt(s.seq)
	if ck, ok := s.restore[s.seq]; ok {
		p.restoreSims(ck)
	}
}

// checkpointSims snapshots every probe-visible piece of simulator state.
func (p *Profiler) checkpointSims() *simCheckpoint {
	return &simCheckpoint{
		mem:       p.mem.Checkpoint(),
		l1i:       p.l1i.Checkpoint(),
		itlb:      p.itlb.Checkpoint(),
		tour:      p.tour.Checkpoint(),
		lastData:  p.lastData,
		lastFetch: p.lastFetch,
	}
}

// restoreSims rewinds simulator state to a warm-pass snapshot.
func (p *Profiler) restoreSims(ck *simCheckpoint) {
	p.mem.Restore(ck.mem)
	p.l1i.Restore(ck.l1i)
	p.itlb.Restore(ck.itlb)
	p.tour.Restore(ck.tour)
	p.lastData = ck.lastData
	p.lastFetch = ck.lastFetch
}

// touch registers m as dirty in the current interval so fold visits it.
func (s *sampState) touch(m *methodRecord) {
	if m.mark != s.epoch {
		m.mark = s.epoch
		s.touched = append(s.touched, m)
	}
}

// fold extrapolates the finished interval: every touched method's scratch
// probe outcomes enter its report counters multiplied by the interval
// weight. The touched slice is append-ordered — no map iteration — so the
// fold is deterministic.
func (s *sampState) fold() {
	w := uint64(s.weight)
	for _, m := range s.touched {
		m.sMispredicts += m.iMisp * w
		m.sL2 += m.iL2 * w
		m.sLLC += m.iLLC * w
		m.sMem += m.iMem * w
		m.sTLBMiss += m.iTLB * w
		m.icMiss += m.iIC * w
		m.itlbMiss += m.iITLB * w
		m.iMisp, m.iL2, m.iLLC, m.iMem = 0, 0, 0, 0
		m.iTLB, m.iIC, m.iITLB = 0, 0, 0
	}
	s.touched = s.touched[:0]
	s.epoch++
}

// finishMeasure folds the final (possibly partial) live interval. Report
// calls it exactly once; the final interval is always live (the plan pins
// the last interval's weight to 1), so no probe outcome is lost.
func (s *sampState) finishMeasure() {
	if s.done {
		return
	}
	if s.live {
		s.fold()
	}
	s.done = true
}

// sampFetch is fetch for live intervals: identical walk, memo, and probe
// order, but misses land in interval scratch for weighted folding.
func (p *Profiler) sampFetch(m *methodRecord, n uint64) {
	bytes := n * opBytes
	if bytes > m.codeSize*2 {
		bytes = m.codeSize * 2
	}
	start := m.fetchOff
	for off := uint64(0); off < bytes; off += 64 {
		addr := m.codeBase + (start+off)%m.codeSize
		line := addr >> 6
		if line == p.lastFetch {
			continue
		}
		p.lastFetch = line
		if !p.l1i.Access(addr) {
			m.iIC++
		}
		if !p.itlb.Access(addr) {
			m.iITLB++
		}
	}
	m.fetchOff = (start + bytes) % m.codeSize
}

// advanceFetch advances the fetch pointer through a dead interval without
// probing, so a later live interval resumes at the same code offset the
// exact path would be at.
func advanceFetch(m *methodRecord, n uint64) {
	bytes := n * opBytes
	if bytes > m.codeSize*2 {
		bytes = m.codeSize * 2
	}
	m.fetchOff = (m.fetchOff + bytes) % m.codeSize
}

// classifyLoadScratch is classifyLoad with outcomes routed to interval
// scratch. Only live intervals reach it, and sampled mode never runs with
// the reference simulators, so the memo needs no p.ref guard.
func (p *Profiler) classifyLoadScratch(m *methodRecord, addr uint64) {
	line := addr >> p.memShift
	if line == p.lastData {
		return
	}
	p.lastData = line
	res, tlbMiss := p.mem.Access(addr)
	if tlbMiss {
		m.iTLB++
	}
	switch res {
	case uarch.HitL2:
		m.iL2++
	case uarch.HitLLC:
		m.iLLC++
	case uarch.HitMemory:
		m.iMem++
	}
}

// storeProbeScratch is storeProbe with the TLB outcome routed to scratch.
func (p *Profiler) storeProbeScratch(m *methodRecord, addr uint64) {
	line := addr >> p.memShift
	if line == p.lastData {
		return
	}
	p.lastData = line
	if _, tlbMiss := p.mem.Access(addr); tlbMiss {
		m.iTLB++
	}
}
