package perf

import "testing"

// Microbenchmarks for the event hot path, each run once on the optimized
// simulators and once on the retained reference path (Options.Reference), so
// `go test -bench` shows the rewrite's speedup directly and cmd/albertabench
// can record it in BENCH_profiler.json.

var eventPaths = []struct {
	name string
	ref  bool
}{
	{"opt", false},
	{"ref", true},
}

// BenchmarkLoadHit measures an 8-byte-element walk over an L1-resident
// buffer: the dominant event of cache-friendly kernels. Seven of eight loads
// repeat the previous line, the case the same-line memo targets.
func BenchmarkLoadHit(b *testing.B) {
	for _, path := range eventPaths {
		b.Run(path.name, func(b *testing.B) {
			p := NewWithOptions(Options{Reference: path.ref})
			p.Enter("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Load(uint64(i&511) * 8)
			}
		})
	}
}

// BenchmarkLoadStream measures an 8-byte-element walk over a 64 MiB buffer
// (lbm's access shape): every eighth load crosses into a fresh line and
// misses all the way to memory.
func BenchmarkLoadStream(b *testing.B) {
	for _, path := range eventPaths {
		b.Run(path.name, func(b *testing.B) {
			p := NewWithOptions(Options{Reference: path.ref})
			p.Enter("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Load(uint64(i) * 8 % (64 << 20))
			}
		})
	}
}

// BenchmarkLoadMiss measures the adversarial line-stride walk: no same-line
// reuse at all, so every load pays the full four-level probe plus fills.
// This isolates the raw simulator speedup with no help from the memo.
func BenchmarkLoadMiss(b *testing.B) {
	for _, path := range eventPaths {
		b.Run(path.name, func(b *testing.B) {
			p := NewWithOptions(Options{Reference: path.ref})
			p.Enter("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Load(uint64(i) * 64 % (64 << 20))
			}
		})
	}
}

// BenchmarkStore measures an 8-byte-element store walk over a resident
// buffer (TLB plus line fill, no latency classification).
func BenchmarkStore(b *testing.B) {
	for _, path := range eventPaths {
		b.Run(path.name, func(b *testing.B) {
			p := NewWithOptions(Options{Reference: path.ref})
			p.Enter("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Store(uint64(i&511) * 8)
			}
		})
	}
}

// BenchmarkBranchPredictable measures a branch the tournament predictor
// learns perfectly.
func BenchmarkBranchPredictable(b *testing.B) {
	for _, path := range eventPaths {
		b.Run(path.name, func(b *testing.B) {
			p := NewWithOptions(Options{Reference: path.ref})
			p.Enter("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Branch(1, true)
			}
		})
	}
}

// BenchmarkBranchRandom measures an unlearnable branch (constant
// mispredict-path work in the predictor tables).
func BenchmarkBranchRandom(b *testing.B) {
	for _, path := range eventPaths {
		b.Run(path.name, func(b *testing.B) {
			p := NewWithOptions(Options{Reference: path.ref})
			p.Enter("bench")
			state := uint64(88172645463325252)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				p.Branch(1, state&1 == 0)
			}
		})
	}
}

// BenchmarkOpsBranch measures the fused work-then-branch call that the
// benchmark kernels' inner loops issue.
func BenchmarkOpsBranch(b *testing.B) {
	for _, path := range eventPaths {
		b.Run(path.name, func(b *testing.B) {
			p := NewWithOptions(Options{Reference: path.ref})
			p.Enter("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.OpsBranch(8, 3, i&7 != 0)
			}
		})
	}
}

// BenchmarkLoadRange measures a 64-load sequential batch (8-byte elements,
// i.e. 8 loads per cache line get coalesced into one probe at stride 1).
func BenchmarkLoadRange(b *testing.B) {
	for _, path := range eventPaths {
		b.Run(path.name, func(b *testing.B) {
			p := NewWithOptions(Options{Reference: path.ref})
			p.Enter("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.LoadRange(uint64(i)*512%(16<<20), 8, 64)
			}
		})
	}
}

// BenchmarkLoadStore measures the read-modify-write pair, whose store probe
// the batched form coalesces away.
func BenchmarkLoadStore(b *testing.B) {
	for _, path := range eventPaths {
		b.Run(path.name, func(b *testing.B) {
			p := NewWithOptions(Options{Reference: path.ref})
			p.Enter("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.LoadStore(uint64(i&4095) * 16)
			}
		})
	}
}
