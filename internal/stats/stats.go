// Package stats implements the summarization methodology of Section V of
// "The Alberta Workloads for the SPEC CPU 2017 Benchmark Suite" (ISPASS
// 2018): geometric means and geometric standard deviations of behaviour
// ratios across workloads, the proportional variation V = σg/μg, and the
// per-benchmark variation scores μg(V) (top-down categories, Eq. 4) and
// μg(M) (method coverage, Eq. 5).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested over no samples.
var ErrEmpty = errors.New("stats: no samples")

// ErrNonPositive is returned when a geometric statistic is requested over a
// sample set containing a zero or negative value.
var ErrNonPositive = errors.New("stats: non-positive sample in geometric statistic")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// GeoMean returns the geometric mean of xs (Eq. 1 of the paper):
//
//	μg = (Π xᵢ)^(1/n)
//
// computed in log space for numerical stability. All samples must be
// strictly positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("%w: %v", ErrNonPositive, x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// GeoStdDev returns the geometric standard deviation of xs (Eq. 2):
//
//	σg = exp( sqrt( Σ (ln(xᵢ/μg))² / n ) )
//
// σg is dimensionless and ≥ 1; σg = 1 means no variation at all.
func GeoStdDev(xs []float64) (float64, error) {
	mu, err := GeoMean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := math.Log(x / mu)
		ss += d * d
	}
	return math.Exp(math.Sqrt(ss / float64(len(xs)))), nil
}

// PropVariation returns the proportional variation of xs (Eq. 3): the ratio
// between the geometric standard deviation and the geometric mean,
//
//	V = σg / μg .
//
// The paper uses this, rather than the coefficient of variation, because the
// underlying values are themselves ratios.
func PropVariation(xs []float64) (float64, error) {
	mu, err := GeoMean(xs)
	if err != nil {
		return 0, err
	}
	sigma, err := GeoStdDev(xs)
	if err != nil {
		return 0, err
	}
	return sigma / mu, nil
}

// CategorySummary summarizes one behaviour category (e.g. the front-end
// bound fraction) over all workloads of a benchmark.
type CategorySummary struct {
	Name    string  `json:"name"`     // category label, e.g. "frontend"
	GeoMean float64 `json:"geo_mean"` // μg over workloads
	GeoStd  float64 `json:"geo_std"`  // σg over workloads
	V       float64 `json:"v"`        // σg/μg
	N       int     `json:"n"`        // number of workloads summarized
}

// Summarize computes the per-category geometric summary for a named sample
// set.
func Summarize(name string, xs []float64) (CategorySummary, error) {
	mu, err := GeoMean(xs)
	if err != nil {
		return CategorySummary{}, fmt.Errorf("stats: category %q: %w", name, err)
	}
	sigma, err := GeoStdDev(xs)
	if err != nil {
		return CategorySummary{}, fmt.Errorf("stats: category %q: %w", name, err)
	}
	return CategorySummary{
		Name:    name,
		GeoMean: mu,
		GeoStd:  sigma,
		V:       sigma / mu,
		N:       len(xs),
	}, nil
}

// VariationScore computes the geometric mean of the proportional variations
// of a set of categories (Eq. 4 for the top-down categories, Eq. 5 for
// method coverage):
//
//	μg(V) = (Π V(cᵢ))^(1/k)
func VariationScore(categories []CategorySummary) (float64, error) {
	if len(categories) == 0 {
		return 0, ErrEmpty
	}
	vs := make([]float64, len(categories))
	for i, c := range categories {
		vs[i] = c.V
	}
	return GeoMean(vs)
}

// CoverageOptions control the method-coverage summarization of Section V-C.
type CoverageOptions struct {
	// OthersThreshold is the fraction (of total time, per workload) below
	// which a method is folded into the synthetic "others" category. A
	// method survives only if it reaches the threshold in at least one
	// workload. The paper uses 0.05% = 0.0005.
	OthersThreshold float64
	// Offset is added to every time fraction before the geometric
	// statistics are computed, so that methods with zero time in some
	// workload do not make the geometric mean collapse. The paper adds
	// 0.01 (i.e. one percentage point when fractions are expressed in
	// percent; we keep fractions in [0,1], so the equivalent offset is
	// 0.0001 by default but remains configurable for the ablation study).
	Offset float64
}

// DefaultCoverageOptions mirrors the paper's choices with fractions
// expressed in [0, 1].
func DefaultCoverageOptions() CoverageOptions {
	return CoverageOptions{OthersThreshold: 0.0005, Offset: 0.0001}
}

// Coverage is one workload's method-coverage observation: the fraction of
// execution time attributed to each method. Fractions should sum to ~1.
type Coverage map[string]float64

// SortedMethods returns c's method names in lexical order. Go randomizes
// map iteration per run, so any float accumulation or output derived from
// a Coverage must walk it through this to stay bit-identical across runs.
func (c Coverage) SortedMethods() []string {
	names := make([]string, 0, len(c))
	for m := range c {
		names = append(names, m)
	}
	sort.Strings(names)
	return names
}

// CoverageSummary is the summarized method-coverage variation for one
// benchmark across workloads.
type CoverageSummary struct {
	// Methods holds the per-method summaries, sorted by descending
	// geometric-mean time fraction. A synthetic "others" method may be
	// present.
	Methods []CategorySummary `json:"methods"`
	// Score is μg(M), Eq. 5: the geometric mean of the per-method
	// proportional variations.
	Score float64 `json:"score"`
	// Workloads is the number of workloads summarized.
	Workloads int `json:"workloads"`
}

// SummarizeCoverage applies the Section V-C methodology to per-workload
// method coverage observations: methods below the "others" threshold in
// every workload are grouped, an offset is added to every fraction, and the
// per-method proportional variations are combined with Eq. 5.
func SummarizeCoverage(covs []Coverage, opts CoverageOptions) (CoverageSummary, error) {
	if len(covs) == 0 {
		return CoverageSummary{}, ErrEmpty
	}
	if opts.OthersThreshold < 0 || opts.Offset < 0 {
		return CoverageSummary{}, fmt.Errorf("stats: negative coverage option: %+v", opts)
	}

	// A method is kept if it reaches the threshold in at least one
	// workload; all other time is folded into "others".
	keep := map[string]bool{}
	for _, cov := range covs {
		for m, frac := range cov {
			if frac >= opts.OthersThreshold {
				keep[m] = true
			}
		}
	}

	names := make([]string, 0, len(keep))
	for m := range keep {
		names = append(names, m)
	}
	sort.Strings(names)

	// Build the per-method series across workloads, including "others".
	series := make(map[string][]float64, len(names)+1)
	var othersSeen bool
	for _, cov := range covs {
		// Accumulate in sorted-key order so the rounded sum is identical
		// run to run.
		others := 0.0
		for _, m := range cov.SortedMethods() {
			if !keep[m] {
				others += cov[m]
			}
		}
		for _, m := range names {
			series[m] = append(series[m], cov[m]+opts.Offset)
		}
		if others > 0 {
			othersSeen = true
		}
		series["others"] = append(series["others"], others+opts.Offset)
	}
	if othersSeen {
		names = append(names, "others")
	} else {
		delete(series, "others")
	}

	summary := CoverageSummary{Workloads: len(covs)}
	for _, m := range names {
		cs, err := Summarize(m, series[m])
		if err != nil {
			return CoverageSummary{}, err
		}
		summary.Methods = append(summary.Methods, cs)
	}
	sort.Slice(summary.Methods, func(i, j int) bool {
		if summary.Methods[i].GeoMean != summary.Methods[j].GeoMean {
			return summary.Methods[i].GeoMean > summary.Methods[j].GeoMean
		}
		return summary.Methods[i].Name < summary.Methods[j].Name
	})

	score, err := VariationScore(summary.Methods)
	if err != nil {
		return CoverageSummary{}, err
	}
	summary.Score = score
	return summary, nil
}
