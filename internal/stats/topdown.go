package stats

import "fmt"

// TopDown is one workload's top-down observation: the fraction of pipeline
// slots classified into each of Intel's four top-level categories
// (Section V-B). Fractions are in [0, 1] and should sum to ~1.
type TopDown struct {
	FrontEnd float64 `json:"frontend"` // micro-ops could not be supplied by the front end
	BackEnd  float64 `json:"backend"`  // micro-ops stalled on back-end resources
	BadSpec  float64 `json:"badspec"`  // micro-ops allocated but never retired
	Retiring float64 `json:"retiring"` // micro-ops allocated and retired
}

// Sum returns the total of the four fractions (≈ 1 for a well-formed
// observation).
func (t TopDown) Sum() float64 {
	return t.FrontEnd + t.BackEnd + t.BadSpec + t.Retiring
}

// Normalize returns t scaled so that the four categories sum to exactly 1.
// It returns an error when the observation is degenerate (sum ≤ 0).
func (t TopDown) Normalize() (TopDown, error) {
	s := t.Sum()
	if s <= 0 {
		return TopDown{}, fmt.Errorf("stats: degenerate top-down observation %+v", t)
	}
	return TopDown{
		FrontEnd: t.FrontEnd / s,
		BackEnd:  t.BackEnd / s,
		BadSpec:  t.BadSpec / s,
		Retiring: t.Retiring / s,
	}, nil
}

// TopDownSummary is the Table II row fragment for one benchmark: the
// geometric summary of each top-down category across workloads and the
// combined variation score μg(V).
type TopDownSummary struct {
	FrontEnd CategorySummary `json:"frontend"`
	BackEnd  CategorySummary `json:"backend"`
	BadSpec  CategorySummary `json:"badspec"`
	Retiring CategorySummary `json:"retiring"`
	// Score is μg(V), Eq. 4.
	Score float64 `json:"score"`
	// Workloads is the number of workloads summarized.
	Workloads int `json:"workloads"`
}

// Categories returns the four category summaries in the paper's order
// (f, b, s, r).
func (s TopDownSummary) Categories() []CategorySummary {
	return []CategorySummary{s.FrontEnd, s.BackEnd, s.BadSpec, s.Retiring}
}

// floorFraction guards the geometric statistics against categories that are
// exactly zero for some workload. Hardware counters never report an exact
// zero over a full run (the paper's lbm bad-speculation mean is 0.4%, not
// 0); the model can, so we clamp to a tiny floor rather than fail.
const floorFraction = 1e-6

// SummarizeTopDown computes the Section V-B summary over per-workload
// top-down observations: μg and σg for each category (Eqs. 1–2), the
// proportional variations (Eq. 3), and μg(V) (Eq. 4). Observations are
// normalized first.
func SummarizeTopDown(obs []TopDown) (TopDownSummary, error) {
	if len(obs) == 0 {
		return TopDownSummary{}, ErrEmpty
	}
	var f, b, sp, r []float64
	for _, o := range obs {
		n, err := o.Normalize()
		if err != nil {
			return TopDownSummary{}, err
		}
		f = append(f, max(n.FrontEnd, floorFraction))
		b = append(b, max(n.BackEnd, floorFraction))
		sp = append(sp, max(n.BadSpec, floorFraction))
		r = append(r, max(n.Retiring, floorFraction))
	}

	var sum TopDownSummary
	var err error
	if sum.FrontEnd, err = Summarize("frontend", f); err != nil {
		return TopDownSummary{}, err
	}
	if sum.BackEnd, err = Summarize("backend", b); err != nil {
		return TopDownSummary{}, err
	}
	if sum.BadSpec, err = Summarize("badspec", sp); err != nil {
		return TopDownSummary{}, err
	}
	if sum.Retiring, err = Summarize("retiring", r); err != nil {
		return TopDownSummary{}, err
	}
	sum.Workloads = len(obs)
	sum.Score, err = VariationScore(sum.Categories())
	if err != nil {
		return TopDownSummary{}, err
	}
	return sum, nil
}
