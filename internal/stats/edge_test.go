package stats

import (
	"errors"
	"testing"
)

// Degenerate-input behavior for the Eq. 1–3 statistics, documented here
// as the contract the reports rely on:
//
//   - single element: μg = x, σg = 1, V = 1/x;
//   - all equal: μg = x, σg = 1, V = 1/x — "no variation" is σg = 1, not
//     0, because σg is a multiplicative spread factor. σg is 1 only up to
//     floating-point rounding: μg round-trips through exp(log x), so
//     x/μg can differ from 1 in the last ulp;
//   - any zero (or negative) sample: ErrNonPositive. Geometric statistics
//     are undefined at 0; callers must offset (CoverageOptions.Offset)
//     before summarizing series that can touch zero.

func TestGeoMeanSingleElement(t *testing.T) {
	got, err := GeoMean([]float64{7.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 7.5, 1e-12) {
		t.Errorf("GeoMean([7.5]) = %v, want 7.5", got)
	}
}

func TestGeoStdDevSingleElement(t *testing.T) {
	// One sample has no spread: σg is 1 (to rounding; see the contract
	// note above).
	got, err := GeoStdDev([]float64{7.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1, 1e-12) {
		t.Errorf("GeoStdDev([7.5]) = %v, want 1", got)
	}
}

func TestPropVariationSingleElement(t *testing.T) {
	// V = σg/μg = 1/x: proportional variation of a single sample depends
	// on its magnitude, which is why the paper compares V across
	// benchmarks only at equal workload counts.
	got, err := PropVariation([]float64{4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("PropVariation([4]) = %v, want 0.25", got)
	}
}

func TestAllEqualSamples(t *testing.T) {
	xs := []float64{0.3, 0.3, 0.3, 0.3}
	mu, err := GeoMean(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mu, 0.3, 1e-12) {
		t.Errorf("GeoMean(all-equal) = %v, want 0.3", mu)
	}
	sigma, err := GeoStdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sigma, 1, 1e-12) {
		t.Errorf("GeoStdDev(all-equal) = %v, want 1", sigma)
	}
	v, err := PropVariation(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 1/0.3, 1e-9) {
		t.Errorf("PropVariation(all-equal) = %v, want %v", v, 1/0.3)
	}
}

func TestZeroContainingSamplesRejected(t *testing.T) {
	for _, fn := range []struct {
		name string
		f    func([]float64) (float64, error)
	}{
		{"GeoMean", GeoMean},
		{"GeoStdDev", GeoStdDev},
		{"PropVariation", PropVariation},
	} {
		if _, err := fn.f([]float64{1, 0, 2}); !errors.Is(err, ErrNonPositive) {
			t.Errorf("%s with a zero sample: err = %v, want ErrNonPositive", fn.name, err)
		}
	}
}

func TestSummarizeSingleWorkload(t *testing.T) {
	cs, err := Summarize("frontend", []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	if cs.N != 1 || !almostEqual(cs.GeoMean, 0.4, 1e-12) || !almostEqual(cs.GeoStd, 1, 1e-12) {
		t.Errorf("Summarize single workload = %+v, want N=1 μg=0.4 σg=1", cs)
	}
	if !almostEqual(cs.V, 1/0.4, 1e-9) {
		t.Errorf("V = %v, want %v", cs.V, 1/0.4)
	}
}

// SummarizeCoverage must survive methods that drop to exactly zero in
// some workload: the offset keeps the geometric statistics defined.
func TestSummarizeCoverageZeroFractionWorkload(t *testing.T) {
	covs := []Coverage{
		{"hot": 0.9, "cold": 0.1},
		{"hot": 1.0}, // "cold" has zero time here
	}
	sum, err := SummarizeCoverage(covs, DefaultCoverageOptions())
	if err != nil {
		t.Fatalf("zero-fraction workload must not collapse the summary: %v", err)
	}
	if sum.Workloads != 2 {
		t.Errorf("Workloads = %d, want 2", sum.Workloads)
	}
	if sum.Score <= 0 {
		t.Errorf("Score = %v, want > 0", sum.Score)
	}
}

// SortedMethods is the deterministic-iteration contract the harness
// reports rely on.
func TestCoverageSortedMethods(t *testing.T) {
	c := Coverage{"b": 0.2, "a": 0.5, "c": 0.3}
	got := c.SortedMethods()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("SortedMethods = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedMethods = %v, want %v", got, want)
		}
	}
	if len(Coverage{}.SortedMethods()) != 0 {
		t.Error("empty coverage should yield no methods")
	}
}
