package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m != 2.5 {
		t.Errorf("Mean = %v, want 2.5", m)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestStdDev(t *testing.T) {
	s, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestGeoMeanBasics(t *testing.T) {
	tests := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{4}, 4},
		{[]float64{1, 4}, 2},
		{[]float64{2, 8}, 4},
		{[]float64{1, 10, 100}, 10},
	}
	for _, tc := range tests {
		got, err := GeoMean(tc.xs)
		if err != nil {
			t.Fatalf("GeoMean(%v): %v", tc.xs, err)
		}
		if !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("GeoMean(%v) = %v, want %v", tc.xs, got, tc.want)
		}
	}
}

func TestGeoMeanRejectsNonPositive(t *testing.T) {
	for _, xs := range [][]float64{{0}, {-1}, {2, 0, 3}, {1, -2}} {
		if _, err := GeoMean(xs); !errors.Is(err, ErrNonPositive) {
			t.Errorf("GeoMean(%v) err = %v, want ErrNonPositive", xs, err)
		}
	}
}

func TestGeoMeanEmpty(t *testing.T) {
	if _, err := GeoMean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("GeoMean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestGeoStdDevConstantSeries(t *testing.T) {
	// A constant series has σg exactly 1 (no variation).
	s, err := GeoStdDev([]float64{3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s, 1, 1e-12) {
		t.Errorf("GeoStdDev(constant) = %v, want 1", s)
	}
}

func TestGeoStdDevKnownValue(t *testing.T) {
	// For {e, 1/e} the geometric mean is 1 and ln-ratios are ±1, so
	// σg = exp(sqrt((1+1)/2)) = e.
	s, err := GeoStdDev([]float64{math.E, 1 / math.E})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s, math.E, 1e-9) {
		t.Errorf("GeoStdDev = %v, want e", s)
	}
}

func TestPropVariation(t *testing.T) {
	v, err := PropVariation([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 1/0.5, 1e-9) {
		t.Errorf("PropVariation = %v, want 2 (σg=1, μg=0.5)", v)
	}
}

func TestGeoMeanScaleInvariance(t *testing.T) {
	// Property: GeoMean(c*xs) = c * GeoMean(xs) for c > 0.
	f := func(raw []float64, scale float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			v := math.Abs(x)
			if v > 1e-6 && v < 1e6 && !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := math.Abs(scale)
		if c < 1e-3 || c > 1e3 || math.IsNaN(c) || math.IsInf(c, 0) {
			c = 2.5
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = c * x
		}
		g1, err1 := GeoMean(xs)
		g2, err2 := GeoMean(scaled)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(g2, c*g1, 1e-6*c*g1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoStdDevScaleInvariance(t *testing.T) {
	// Property: σg is invariant under positive scaling.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			v := math.Abs(x)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = 7 * x
		}
		s1, err1 := GeoStdDev(xs)
		s2, err2 := GeoStdDev(scaled)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(s1, s2, 1e-9*s1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	// Property: min ≤ μg ≤ max.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			v := math.Abs(x)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = min(lo, x)
			hi = max(hi, x)
		}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	cs, err := Summarize("f", []float64{0.2, 0.2, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Name != "f" || cs.N != 3 {
		t.Errorf("unexpected summary metadata: %+v", cs)
	}
	if !almostEqual(cs.GeoMean, 0.2, 1e-12) || !almostEqual(cs.GeoStd, 1, 1e-12) {
		t.Errorf("unexpected summary values: %+v", cs)
	}
	if !almostEqual(cs.V, 5, 1e-9) {
		t.Errorf("V = %v, want 5", cs.V)
	}
}

func TestVariationScoreEmpty(t *testing.T) {
	if _, err := VariationScore(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("VariationScore(nil) err = %v, want ErrEmpty", err)
	}
}

func TestTopDownNormalize(t *testing.T) {
	td := TopDown{FrontEnd: 1, BackEnd: 1, BadSpec: 1, Retiring: 1}
	n, err := td.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(n.Sum(), 1, 1e-12) || !almostEqual(n.FrontEnd, 0.25, 1e-12) {
		t.Errorf("Normalize = %+v", n)
	}
}

func TestTopDownNormalizeDegenerate(t *testing.T) {
	if _, err := (TopDown{}).Normalize(); err == nil {
		t.Error("Normalize of zero observation should fail")
	}
}

func TestSummarizeTopDownIdenticalWorkloads(t *testing.T) {
	obs := []TopDown{
		{0.1, 0.4, 0.1, 0.4},
		{0.1, 0.4, 0.1, 0.4},
		{0.1, 0.4, 0.1, 0.4},
	}
	sum, err := SummarizeTopDown(obs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Workloads != 3 {
		t.Errorf("Workloads = %d, want 3", sum.Workloads)
	}
	// No variation: every σg is 1, so μg(V) = geomean of 1/μg values.
	want := math.Pow(1/0.1*1/0.4*1/0.1*1/0.4, 0.25)
	if !almostEqual(sum.Score, want, 1e-9) {
		t.Errorf("Score = %v, want %v", sum.Score, want)
	}
}

func TestSummarizeTopDownMoreVariationHigherScore(t *testing.T) {
	stable := []TopDown{
		{0.10, 0.40, 0.10, 0.40},
		{0.11, 0.39, 0.10, 0.40},
		{0.10, 0.41, 0.09, 0.40},
	}
	volatile := []TopDown{
		{0.05, 0.60, 0.05, 0.30},
		{0.30, 0.20, 0.20, 0.30},
		{0.10, 0.40, 0.02, 0.48},
	}
	s1, err := SummarizeTopDown(stable)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SummarizeTopDown(volatile)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Score <= s1.Score {
		t.Errorf("volatile score %v should exceed stable score %v", s2.Score, s1.Score)
	}
}

func TestSummarizeTopDownLowMeanArtifact(t *testing.T) {
	// The paper's lbm observation: a category with a tiny mean and high
	// relative noise inflates μg(V) even when the benchmark is otherwise
	// homogeneous.
	withArtifact := []TopDown{
		{0.02, 0.60, 0.001, 0.379},
		{0.02, 0.60, 0.010, 0.370},
		{0.02, 0.60, 0.0005, 0.3795},
	}
	without := []TopDown{
		{0.02, 0.60, 0.05, 0.33},
		{0.02, 0.60, 0.05, 0.33},
		{0.02, 0.60, 0.05, 0.33},
	}
	sa, err := SummarizeTopDown(withArtifact)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := SummarizeTopDown(without)
	if err != nil {
		t.Fatal(err)
	}
	if sa.BadSpec.GeoStd <= sw.BadSpec.GeoStd {
		t.Errorf("artifact σg(badspec) = %v, want > %v", sa.BadSpec.GeoStd, sw.BadSpec.GeoStd)
	}
	if sa.Score <= sw.Score {
		t.Errorf("artifact μg(V) = %v should exceed homogeneous %v", sa.Score, sw.Score)
	}
}

func TestSummarizeTopDownEmpty(t *testing.T) {
	if _, err := SummarizeTopDown(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeCoverageGrouping(t *testing.T) {
	covs := []Coverage{
		{"hot": 0.90, "warm": 0.09, "tiny1": 0.0001, "tiny2": 0.0099},
		{"hot": 0.88, "warm": 0.11, "tiny1": 0.0002, "tiny2": 0.0098},
	}
	sum, err := SummarizeCoverage(covs, CoverageOptions{OthersThreshold: 0.01, Offset: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, m := range sum.Methods {
		names[m.Name] = true
	}
	if !names["hot"] || !names["warm"] || !names["others"] {
		t.Errorf("methods = %v, want hot, warm, others", names)
	}
	if names["tiny1"] || names["tiny2"] {
		t.Errorf("tiny methods should have been grouped into others: %v", names)
	}
	if sum.Workloads != 2 {
		t.Errorf("Workloads = %d, want 2", sum.Workloads)
	}
	// Methods must be sorted by descending geometric mean.
	if sum.Methods[0].Name != "hot" {
		t.Errorf("first method = %q, want hot", sum.Methods[0].Name)
	}
}

func TestSummarizeCoverageKeepsMethodReachingThresholdOnce(t *testing.T) {
	covs := []Coverage{
		{"a": 0.999, "b": 0.001},
		{"a": 0.5, "b": 0.5}, // b is large here, so it must be kept
	}
	sum, err := SummarizeCoverage(covs, CoverageOptions{OthersThreshold: 0.01, Offset: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range sum.Methods {
		if m.Name == "b" {
			found = true
		}
	}
	if !found {
		t.Error("method b reaches threshold in one workload and must be kept")
	}
}

func TestSummarizeCoverageStableVsVolatile(t *testing.T) {
	stable := []Coverage{
		{"a": 0.5, "b": 0.5},
		{"a": 0.5, "b": 0.5},
		{"a": 0.5, "b": 0.5},
	}
	volatile := []Coverage{
		{"a": 0.9, "b": 0.1},
		{"a": 0.1, "b": 0.9},
		{"a": 0.5, "b": 0.5},
	}
	opts := DefaultCoverageOptions()
	s1, err := SummarizeCoverage(stable, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SummarizeCoverage(volatile, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Score <= s1.Score {
		t.Errorf("volatile μg(M) = %v should exceed stable %v", s2.Score, s1.Score)
	}
}

func TestSummarizeCoverageOffsetPreventsCollapse(t *testing.T) {
	// A method absent from one workload would yield a zero fraction; the
	// offset must keep the geometric statistics finite.
	covs := []Coverage{
		{"a": 1.0},
		{"a": 0.5, "b": 0.5},
	}
	sum, err := SummarizeCoverage(covs, DefaultCoverageOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(sum.Score) || math.IsInf(sum.Score, 0) || sum.Score <= 0 {
		t.Errorf("Score = %v, want finite positive", sum.Score)
	}
}

func TestSummarizeCoverageEmpty(t *testing.T) {
	if _, err := SummarizeCoverage(nil, DefaultCoverageOptions()); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeCoverageRejectsNegativeOptions(t *testing.T) {
	_, err := SummarizeCoverage([]Coverage{{"a": 1}}, CoverageOptions{OthersThreshold: -1})
	if err == nil {
		t.Error("negative threshold should be rejected")
	}
}
