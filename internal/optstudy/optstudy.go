// Package optstudy reproduces the compiler-variation analysis distributed
// with the Alberta Workloads: "a study of the variation in branch
// prediction, cache/TLB performance, and execution time when different
// compilers, with different levels of optimization, are used" (Section V).
// The "different compilers" axis is the mini-C compiler's optimization
// levels (-O0 … -O3), and the measurements are the modeled hardware rates
// of the compiled program running each of its workloads.
package optstudy

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/benchmarks/gcc/cc"
	"repro/internal/fdo"
	"repro/internal/perf"
)

// Row is one (program, input, optimization level) observation.
type Row struct {
	Program string
	Input   string
	Level   cc.OptLevel
	Cycles  uint64
	// BranchMispredictRate is modeled mispredicts / branches.
	BranchMispredictRate float64
	// L1DMissRate is loads missing L1 / loads.
	L1DMissRate float64
	// TLBMissesPer1K is DTLB misses per thousand loads.
	TLBMissesPer1K float64
	// Instructions is retired modeled micro-ops.
	Instructions uint64
}

// ErrStudy reports an invalid study configuration.
var ErrStudy = errors.New("optstudy: invalid study")

// Levels is the studied optimization ladder.
var Levels = []cc.OptLevel{cc.O0, cc.O1, cc.O2, cc.O3}

// Run measures program × input × level.
func Run(programs []*fdo.Program) ([]Row, error) {
	if len(programs) == 0 {
		return nil, fmt.Errorf("%w: no programs", ErrStudy)
	}
	var rows []Row
	for _, prog := range programs {
		if err := prog.Validate(); err != nil {
			return nil, err
		}
		for _, level := range Levels {
			unit, err := cc.CompileSource(prog.Source, level, nil, nil)
			if err != nil {
				return nil, fmt.Errorf("optstudy: %s at %v: %w", prog.Name, level, err)
			}
			for _, in := range prog.Inputs {
				p := perf.New()
				if _, err := cc.Run(unit, cc.VMOptions{Globals: in.Globals, Prof: p}); err != nil {
					return nil, fmt.Errorf("optstudy: %s/%s at %v: %w", prog.Name, in.Name, level, err)
				}
				rep := p.Report()
				ev := rep.Total
				row := Row{
					Program:      prog.Name,
					Input:        in.Name,
					Level:        level,
					Cycles:       rep.Cycles,
					Instructions: ev.Ops + ev.LongOps,
				}
				if ev.Branches > 0 {
					row.BranchMispredictRate = float64(ev.Mispredicts) / float64(ev.Branches)
				}
				if ev.Loads > 0 {
					misses := ev.L2Hits + ev.LLCHits + ev.MemHits
					row.L1DMissRate = float64(misses) / float64(ev.Loads)
					row.TLBMissesPer1K = 1000 * float64(ev.TLBMisses) / float64(ev.Loads)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// Speedups aggregates per-program geometric-mean speedup of each level over
// -O0 (across inputs).
func Speedups(rows []Row) map[string]map[cc.OptLevel]float64 {
	// Collect per program/input the O0 baseline.
	base := map[string]map[string]uint64{}
	for _, r := range rows {
		if r.Level == cc.O0 {
			if base[r.Program] == nil {
				base[r.Program] = map[string]uint64{}
			}
			base[r.Program][r.Input] = r.Cycles
		}
	}
	type acc struct {
		logSum float64
		n      int
	}
	accs := map[string]map[cc.OptLevel]*acc{}
	for _, r := range rows {
		b := base[r.Program][r.Input]
		if b == 0 || r.Cycles == 0 {
			continue
		}
		if accs[r.Program] == nil {
			accs[r.Program] = map[cc.OptLevel]*acc{}
		}
		if accs[r.Program][r.Level] == nil {
			accs[r.Program][r.Level] = &acc{}
		}
		a := accs[r.Program][r.Level]
		a.logSum += logf(float64(b) / float64(r.Cycles))
		a.n++
	}
	out := map[string]map[cc.OptLevel]float64{}
	for prog, byLevel := range accs {
		out[prog] = map[cc.OptLevel]float64{}
		for level, a := range byLevel {
			out[prog][level] = expf(a.logSum / float64(a.n))
		}
	}
	return out
}

// Format renders the study as a table plus the speedup summary.
func Format(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("Optimization-level study (modeled hardware)\n")
	fmt.Fprintf(&sb, "%-12s %-14s %-4s %10s %12s %10s %10s %10s\n",
		"program", "input", "opt", "cycles", "instructions", "br-miss%", "L1D-miss%", "TLB/1k")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-14s %-4s %10d %12d %9.2f%% %9.2f%% %10.2f\n",
			r.Program, r.Input, r.Level, r.Cycles, r.Instructions,
			r.BranchMispredictRate*100, r.L1DMissRate*100, r.TLBMissesPer1K)
	}
	sb.WriteString("\ngeomean speedup over -O0 (across inputs):\n")
	sp := Speedups(rows)
	progs := make([]string, 0, len(sp))
	for p := range sp {
		progs = append(progs, p)
	}
	sortStrings(progs)
	for _, p := range progs {
		fmt.Fprintf(&sb, "  %-12s", p)
		for _, level := range Levels {
			fmt.Fprintf(&sb, "  %v=%.3fx", level, sp[p][level])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func logf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log(x)
}

func expf(x float64) float64 { return math.Exp(x) }
