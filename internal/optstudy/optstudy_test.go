package optstudy

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/benchmarks/gcc/cc"
	"repro/internal/fdo"
)

func TestRunProducesFullMatrix(t *testing.T) {
	prog := fdo.ClassifierProgram()
	rows, err := Run([]*fdo.Program{prog})
	if err != nil {
		t.Fatal(err)
	}
	want := len(Levels) * len(prog.Inputs)
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Cycles == 0 || r.Instructions == 0 {
			t.Errorf("empty measurement: %+v", r)
		}
		if r.BranchMispredictRate < 0 || r.BranchMispredictRate > 1 {
			t.Errorf("mispredict rate out of range: %+v", r)
		}
		if r.L1DMissRate < 0 || r.L1DMissRate > 1 {
			t.Errorf("L1D miss rate out of range: %+v", r)
		}
	}
}

func TestOptimizationReducesCycles(t *testing.T) {
	// classifier's hot helper (weigh) binds its parameter once, so O2+
	// inlining fires and must pay off.
	rows, err := Run([]*fdo.Program{fdo.ClassifierProgram()})
	if err != nil {
		t.Fatal(err)
	}
	sp := Speedups(rows)["classifier"]
	if sp[cc.O0] < 0.999 || sp[cc.O0] > 1.001 {
		t.Errorf("O0 speedup over itself = %v, want 1", sp[cc.O0])
	}
	if sp[cc.O3] <= 1.0 {
		t.Errorf("-O3 speedup = %v, want > 1 (inlining must pay off)", sp[cc.O3])
	}
	if sp[cc.O2] < sp[cc.O1]-0.05 {
		t.Errorf("-O2 (%v) should not be meaningfully slower than -O1 (%v)", sp[cc.O2], sp[cc.O1])
	}
}

func TestOptimizationNeverPessimizes(t *testing.T) {
	// The inliner must refuse transformations that duplicate work: no
	// study program may get slower at higher levels.
	for _, prog := range fdo.StudyPrograms() {
		rows, err := Run([]*fdo.Program{prog})
		if err != nil {
			t.Fatal(err)
		}
		sp := Speedups(rows)[prog.Name]
		for _, level := range Levels {
			if sp[level] < 0.999 {
				t.Errorf("%s at %v: speedup %v < 1 (pessimization)", prog.Name, level, sp[level])
			}
		}
	}
}

func TestRatesVaryAcrossInputs(t *testing.T) {
	// The study's purpose: the same binary shows different hardware
	// behaviour under different inputs.
	rows, err := Run([]*fdo.Program{fdo.ClassifierProgram()})
	if err != nil {
		t.Fatal(err)
	}
	rates := map[float64]bool{}
	for _, r := range rows {
		if r.Level == cc.O2 {
			rates[r.BranchMispredictRate] = true
		}
	}
	if len(rates) < 3 {
		t.Errorf("branch behaviour should vary across inputs, got %d distinct rates", len(rates))
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil); !errors.Is(err, ErrStudy) {
		t.Errorf("err = %v", err)
	}
	bad := &fdo.Program{Name: "bad", Source: "int main() { return x; }",
		Inputs: []fdo.Input{{Name: "a"}, {Name: "b"}}}
	if _, err := Run([]*fdo.Program{bad}); err == nil {
		t.Error("invalid program should fail")
	}
}

func TestFormat(t *testing.T) {
	rows, err := Run([]*fdo.Program{fdo.ClassifierProgram()})
	if err != nil {
		t.Fatal(err)
	}
	text := Format(rows)
	for _, want := range []string{"classifier", "-O3", "geomean speedup", "br-miss%"} {
		if !strings.Contains(text, want) {
			t.Errorf("format missing %q:\n%s", want, text[:200])
		}
	}
}

func TestDeterminism(t *testing.T) {
	r1, err := Run([]*fdo.Program{fdo.FilterChainProgram()})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run([]*fdo.Program{fdo.FilterChainProgram()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}
