// Package sweep is the workload-space sweep subsystem: it drives the
// generators to mint N workloads per benchmark (the paper's Section IV
// pitch — as many workloads as the researcher needs), streams every cell
// through the harness without retaining measurements, clusters the
// behaviour vectors incrementally, and selects a minimal representative
// subset per benchmark with a quantified coverage loss (the
// redundancy-reduction methodology of Shaccour & Mansour).
//
// The package is shared by both sweep frontends — cmd/albertasweep and
// the service's POST /v1/sweeps — so the two paths select byte-identical
// representative subsets for the same plan by construction: the plan
// enumeration, the accumulation order, and the k-medoids reduction all
// live here, and every order-sensitive step is keyed by plan index, never
// by completion order.
package sweep

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fdo"
	"repro/internal/harness"
	"repro/internal/harness/report"
)

// ErrSweep reports an invalid sweep configuration.
var ErrSweep = errors.New("sweep: invalid configuration")

// Config describes one sweep: which benchmarks, how many generated
// workloads each, and how the representative subset is selected.
type Config struct {
	// Benchmarks are the benchmark names to sweep; every one must be
	// generator-capable. Empty means every generator-capable benchmark in
	// the suite.
	Benchmarks []string
	// PerBenchmark is the number of workloads generated per benchmark
	// (default 16).
	PerBenchmark int
	// Seed feeds the workload generators; the same seed always mints the
	// same workloads (core.Generator's determinism contract).
	Seed int64
	// K is the number of representatives kept per benchmark (default 3,
	// clamped to PerBenchmark).
	K int
	// Features picks the clustering embedding (default FeaturesCombined:
	// top-down + coverage, the paper's behaviour characterization).
	Features cluster.Features
	// ClusterSeed perturbs the k-medoids initialization (0 = canonical).
	ClusterSeed int64
}

// Normalize validates the config against the suite and fills defaults.
// The benchmark list comes back sorted — plan order is sorted-benchmark ×
// generation-index order, the order both frontends share.
func (c Config) Normalize(suite *core.Suite) (Config, error) {
	if c.PerBenchmark == 0 {
		c.PerBenchmark = 16
	}
	if c.PerBenchmark < 1 {
		return Config{}, fmt.Errorf("%w: per_benchmark must be >= 1 (got %d)", ErrSweep, c.PerBenchmark)
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.K < 1 {
		return Config{}, fmt.Errorf("%w: k must be >= 1 (got %d)", ErrSweep, c.K)
	}
	if c.K > c.PerBenchmark {
		c.K = c.PerBenchmark
	}
	if len(c.Benchmarks) == 0 {
		for _, b := range suite.Benchmarks() {
			if _, ok := b.(core.Generator); ok {
				c.Benchmarks = append(c.Benchmarks, b.Name())
			}
		}
		if len(c.Benchmarks) == 0 {
			return Config{}, fmt.Errorf("%w: suite has no generator-capable benchmarks", ErrSweep)
		}
	} else {
		c.Benchmarks = append([]string(nil), c.Benchmarks...)
		seen := map[string]bool{}
		for _, name := range c.Benchmarks {
			b, ok := suite.Lookup(name)
			if !ok {
				return Config{}, fmt.Errorf("%w: unknown benchmark %q", ErrSweep, name)
			}
			if _, ok := b.(core.Generator); !ok {
				return Config{}, fmt.Errorf("%w: %s cannot generate workloads", ErrSweep, name)
			}
			if seen[name] {
				return Config{}, fmt.Errorf("%w: duplicate benchmark %q", ErrSweep, name)
			}
			seen[name] = true
		}
	}
	sort.Strings(c.Benchmarks)
	return c, nil
}

// Options is the cluster option set a normalized config implies; it is
// applied per benchmark with K clamped to the accumulated point count.
func (c Config) Options() cluster.Options {
	return cluster.Options{K: c.K, Features: c.Features, Seed: c.ClusterSeed}
}

// Plan enumerates the sweep's cells: for each benchmark (sorted), the
// PerBenchmark generated workloads of Seed, in generation-index order.
// Cell index i of the plan is the identity every consumer keys on. The
// config must be normalized.
func Plan(suite *core.Suite, cfg Config) ([]harness.Unit, error) {
	var units []harness.Unit
	for _, name := range cfg.Benchmarks {
		b, ok := suite.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("%w: unknown benchmark %q", ErrSweep, name)
		}
		gen, ok := b.(core.Generator)
		if !ok {
			return nil, fmt.Errorf("%w: %s cannot generate workloads", ErrSweep, name)
		}
		ws, err := gen.GenerateWorkloads(cfg.Seed, cfg.PerBenchmark)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s: generating %d workloads: %w", name, cfg.PerBenchmark, err)
		}
		if len(ws) != cfg.PerBenchmark {
			return nil, fmt.Errorf("sweep: %s: generator returned %d workloads, want %d", name, len(ws), cfg.PerBenchmark)
		}
		for _, w := range ws {
			units = append(units, harness.Unit{Benchmark: b, Workload: w})
		}
	}
	return units, nil
}

// row is the compact per-cell state the accumulator retains: the
// benchmark name and the measurement's behaviour point — never the
// measurement itself.
type row struct {
	benchmark string
	point     cluster.Point
}

// Accumulator folds streamed cells into per-benchmark feature spaces and
// summaries. Add is keyed by plan index, so the eventual selection is a
// pure function of the plan — independent of completion order, worker
// count, and of which frontend (CLI or service) delivered the cells. It
// retains one compact row and one report.Builder row per cell; the
// Measurement handed to Add is released when the call returns.
//
// The Accumulator is not safe for concurrent use; streaming callers
// already serialize sink deliveries (harness.Sink's contract) or hold
// their own lock.
type Accumulator struct {
	cfg     Config
	compact *cluster.FeatureSpace // embedding prototype: Compact only
	rows    map[int]row
	builder *report.Builder
	total   int
}

// NewAccumulator returns an empty accumulator for a normalized config.
func NewAccumulator(cfg Config) *Accumulator {
	return &Accumulator{
		cfg:     cfg,
		compact: cluster.NewFeatureSpace(cfg.Features),
		rows:    map[int]row{},
		builder: report.NewBuilder(),
	}
}

// Add records the cell at plan position index.
func (a *Accumulator) Add(index int, m report.Measurement) {
	a.rows[index] = row{benchmark: m.Benchmark, point: a.compact.Compact(m)}
	a.builder.Add(index, m)
	if index+1 > a.total {
		a.total = index + 1
	}
}

// Len is the number of cells recorded.
func (a *Accumulator) Len() int { return len(a.rows) }

// BenchmarkSweep is one benchmark's reduction: the selected
// representative workloads and what dropping the rest costs.
type BenchmarkSweep struct {
	Benchmark string `json:"benchmark"`
	// Cells is the number of swept workloads; K the representatives kept.
	Cells int `json:"cells"`
	K     int `json:"k"`
	// Representatives are the selected workload names, in medoid order.
	Representatives []string `json:"representatives"`
	// Clusters lists each representative's member workloads (the
	// representative included), in medoid order.
	Clusters []Cluster `json:"clusters"`
	// Cost is the k-medoids objective (total point-to-medoid distance).
	Cost float64 `json:"cost"`
	// CoverageLoss quantifies the reduction: max and mean distance of the
	// dropped workloads to their retained representative.
	CoverageLoss cluster.CoverageLoss `json:"coverage_loss"`
	// Summary is the deterministic fold over the benchmark's cells
	// (counts, cycle aggregates, chained checksum) — the sweep's
	// cross-frontend determinism witness.
	Summary report.BenchSummary `json:"summary"`
}

// Cluster is one selected representative and its members.
type Cluster struct {
	Representative string   `json:"representative"`
	Members        []string `json:"members"`
}

// Report is the sweep result document both frontends emit.
type Report struct {
	SchemaVersion int `json:"schema_version"`
	// Seed, PerBenchmark, K, Features and ClusterSeed echo the normalized
	// sweep configuration; Config echoes the measurement configuration.
	Seed         int64            `json:"seed"`
	PerBenchmark int              `json:"per_benchmark"`
	K            int              `json:"k"`
	Features     string           `json:"features"`
	ClusterSeed  int64            `json:"cluster_seed,omitempty"`
	Config       report.RunConfig `json:"config"`

	Benchmarks []BenchmarkSweep `json:"benchmarks"`

	// FDO, when present, is the hidden-learning study over the selected
	// subsets (cmd/albertasweep -fdo).
	FDO []fdo.ScaleStudy `json:"fdo,omitempty"`
}

// Report reduces everything accumulated: per benchmark (in plan order),
// the points feed a feature space in plan-index order and k-medoids
// selects the representatives. Missing cells (a canceled or failed sweep)
// are an error — a partial reduction would silently misrepresent the
// workload space.
func (a *Accumulator) Report(runCfg report.RunConfig) (*Report, error) {
	type benchAcc struct {
		name string
		fs   *cluster.FeatureSpace
	}
	var order []*benchAcc
	byName := map[string]*benchAcc{}
	for idx := 0; idx < a.total; idx++ {
		r, ok := a.rows[idx]
		if !ok {
			return nil, fmt.Errorf("sweep: cell %d of %d was never delivered (canceled or failed sweep)", idx, a.total)
		}
		ba := byName[r.benchmark]
		if ba == nil {
			ba = &benchAcc{name: r.benchmark, fs: cluster.NewFeatureSpace(a.cfg.Features)}
			byName[r.benchmark] = ba
			order = append(order, ba)
		}
		ba.fs.AddPoint(r.point)
	}
	rep := &Report{
		SchemaVersion: report.SchemaVersion,
		Seed:          a.cfg.Seed,
		PerBenchmark:  a.cfg.PerBenchmark,
		K:             a.cfg.K,
		Features:      a.cfg.Features.String(),
		ClusterSeed:   a.cfg.ClusterSeed,
		Config:        runCfg,
	}
	summaries := a.builder.Summaries()
	byBenchSummary := map[string]report.BenchSummary{}
	for _, s := range summaries {
		byBenchSummary[s.Benchmark] = s
	}
	for _, ba := range order {
		opts := a.cfg.Options()
		if opts.K > ba.fs.Len() {
			opts.K = ba.fs.Len()
		}
		sel, err := ba.fs.Select(opts)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s: %w", ba.name, err)
		}
		bs := BenchmarkSweep{
			Benchmark:       ba.name,
			Cells:           ba.fs.Len(),
			K:               opts.K,
			Representatives: sel.Representatives,
			Cost:            sel.Clustering.Cost,
			CoverageLoss:    sel.Loss,
			Summary:         byBenchSummary[ba.name],
		}
		for slot, medoid := range sel.Clustering.Medoids {
			cl := Cluster{Representative: sel.Names[medoid]}
			for i, assign := range sel.Clustering.Assign {
				if assign == slot {
					cl.Members = append(cl.Members, sel.Names[i])
				}
			}
			bs.Clusters = append(bs.Clusters, cl)
		}
		rep.Benchmarks = append(rep.Benchmarks, bs)
	}
	return rep, nil
}

// Format renders the sweep report as text.
func Format(r *Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload-space sweep: seed=%d n=%d/benchmark k=%d features=%s\n",
		r.Seed, r.PerBenchmark, r.K, r.Features)
	for _, b := range r.Benchmarks {
		fmt.Fprintf(&sb, "%s: %d workloads -> %d representatives (cost=%.4f, coverage loss: dropped=%d max=%.4f mean=%.4f)\n",
			b.Benchmark, b.Cells, b.K, b.Cost,
			b.CoverageLoss.Dropped, b.CoverageLoss.MaxDistance, b.CoverageLoss.MeanDistance)
		for i, cl := range b.Clusters {
			fmt.Fprintf(&sb, "  cluster %d (representative %s): %s\n", i+1, cl.Representative, strings.Join(cl.Members, " "))
		}
		fmt.Fprintf(&sb, "  checksum=%016x cycles=[%d..%d] sum=%d\n",
			b.Summary.Checksum, b.Summary.CyclesMin, b.Summary.CyclesMax, b.Summary.CyclesSum)
	}
	for _, st := range r.FDO {
		sb.WriteString(fdo.FormatScaleStudy(st))
	}
	return sb.String()
}
