package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/harness/report"
	"repro/internal/perf"
)

// genBench is a generator-capable benchmark whose behaviour varies by
// generated index, giving the clustering real structure.
type genBench struct {
	name string
}

func (b *genBench) Name() string { return b.name }
func (b *genBench) Area() string { return "testing" }
func (b *genBench) Workloads() ([]core.Workload, error) {
	return []core.Workload{core.Meta{Name: "refrate", Kind: core.KindRefrate}}, nil
}

func (b *genBench) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	ws := make([]core.Workload, n)
	for i := range ws {
		ws[i] = core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta}
	}
	return ws, nil
}

func (b *genBench) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	_, idx, ok := core.ParseGeneratedName(w.WorkloadName())
	if !ok {
		idx = 0
	}
	n := uint64(250 + 173*idx)
	p.Do(fmt.Sprintf("phase.%d", idx%3), func() {
		for i := uint64(0); i < n; i++ {
			p.Ops(2)
			p.Branch(1, i%uint64(idx+2) == 0)
			p.Load(i * 64 % (1 << 14))
		}
	})
	p.Do("tail", func() { p.Ops(n % 503) })
	sum := core.NewChecksum().AddString(b.name).AddString(w.WorkloadName())
	return core.Result{
		Benchmark: b.name, Workload: w.WorkloadName(),
		Kind: w.WorkloadKind(), Checksum: sum.Value(),
	}, nil
}

// plainBench has no generator.
type plainBench struct{ name string }

func (b *plainBench) Name() string { return b.name }
func (b *plainBench) Area() string { return "testing" }
func (b *plainBench) Workloads() ([]core.Workload, error) {
	return []core.Workload{core.Meta{Name: "refrate", Kind: core.KindRefrate}}, nil
}

func (b *plainBench) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	p.Do("only", func() { p.Ops(10) })
	return core.Result{Benchmark: b.name, Workload: w.WorkloadName(),
		Kind: w.WorkloadKind(), Checksum: 1}, nil
}

func testSuite(t *testing.T) *core.Suite {
	t.Helper()
	s, err := core.NewSuite(
		&genBench{name: "992.beta_r"},
		&genBench{name: "991.alpha_r"},
		&plainBench{name: "990.plain_r"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigNormalize(t *testing.T) {
	suite := testSuite(t)

	// Defaults: every generator-capable benchmark, sorted; n=16, k=3.
	cfg, err := Config{}.Normalize(suite)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.Benchmarks, []string{"991.alpha_r", "992.beta_r"}) {
		t.Errorf("default benchmarks = %v", cfg.Benchmarks)
	}
	if cfg.PerBenchmark != 16 || cfg.K != 3 {
		t.Errorf("defaults: n=%d k=%d, want 16 and 3", cfg.PerBenchmark, cfg.K)
	}

	// K clamps to PerBenchmark; explicit lists come back sorted.
	cfg, err = Config{Benchmarks: []string{"992.beta_r", "991.alpha_r"}, PerBenchmark: 2, K: 5}.Normalize(suite)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.K != 2 {
		t.Errorf("K = %d, want clamped to 2", cfg.K)
	}
	if !reflect.DeepEqual(cfg.Benchmarks, []string{"991.alpha_r", "992.beta_r"}) {
		t.Errorf("benchmarks not sorted: %v", cfg.Benchmarks)
	}

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"unknown benchmark", Config{Benchmarks: []string{"999.none_r"}}},
		{"non-generator", Config{Benchmarks: []string{"990.plain_r"}}},
		{"duplicate", Config{Benchmarks: []string{"991.alpha_r", "991.alpha_r"}}},
		{"negative n", Config{PerBenchmark: -1}},
		{"negative k", Config{K: -2}},
	} {
		if _, err := tc.cfg.Normalize(suite); !errors.Is(err, ErrSweep) {
			t.Errorf("%s: err = %v, want ErrSweep", tc.name, err)
		}
	}
}

func TestPlanOrder(t *testing.T) {
	suite := testSuite(t)
	cfg, err := Config{PerBenchmark: 3, Seed: 9}.Normalize(suite)
	if err != nil {
		t.Fatal(err)
	}
	units, err := Plan(suite, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, u := range units {
		got = append(got, u.Benchmark.Name()+"/"+u.Workload.WorkloadName())
	}
	want := []string{
		"991.alpha_r/gen.s9.0", "991.alpha_r/gen.s9.1", "991.alpha_r/gen.s9.2",
		"992.beta_r/gen.s9.0", "992.beta_r/gen.s9.1", "992.beta_r/gen.s9.2",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("plan order:\ngot  %v\nwant %v", got, want)
	}
}

// streamInto runs the plan with the given worker count, delivering each
// cell to the accumulator, and returns the finished report.
func streamInto(t *testing.T, suite *core.Suite, cfg Config, workers int) *Report {
	t.Helper()
	opts, err := harness.Options{Reps: 1, Workers: workers, FailFast: true}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	units, err := Plan(suite, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator(cfg)
	err = harness.NewPlanRunner(units, opts).Stream(context.Background(), func(c harness.Cell, m report.Measurement) error {
		acc.Add(c.Index, m)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.Report(opts.ReportConfig())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestReportSerialParallelEquivalence is the determinism pin: the full
// sweep report — representatives, clusters, coverage loss, summaries —
// is a pure function of the plan, independent of worker count and hence
// of cell completion order.
func TestReportSerialParallelEquivalence(t *testing.T) {
	suite := testSuite(t)
	cfg, err := Config{PerBenchmark: 8, Seed: 4, K: 3}.Normalize(suite)
	if err != nil {
		t.Fatal(err)
	}
	serial := streamInto(t, suite, cfg, 1)
	parallel := streamInto(t, suite, cfg, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("serial and parallel sweeps disagree:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if len(serial.Benchmarks) != 2 {
		t.Fatalf("%d benchmark sweeps, want 2", len(serial.Benchmarks))
	}
	for _, b := range serial.Benchmarks {
		if b.Cells != 8 || b.K != 3 || len(b.Representatives) != 3 || len(b.Clusters) != 3 {
			t.Errorf("%s: unexpected shape %+v", b.Benchmark, b)
		}
		if b.CoverageLoss.Dropped != 5 {
			t.Errorf("%s: dropped = %d, want 5", b.Benchmark, b.CoverageLoss.Dropped)
		}
		members := 0
		for _, cl := range b.Clusters {
			members += len(cl.Members)
		}
		if members != 8 {
			t.Errorf("%s: clusters cover %d members, want 8", b.Benchmark, members)
		}
	}
}

// TestAccumulatorOrderIndependence feeds the identical cells in forward
// and reverse arrival order; the reports must match exactly (Add keys by
// plan index, Report folds in index order).
func TestAccumulatorOrderIndependence(t *testing.T) {
	suite := testSuite(t)
	cfg, err := Config{Benchmarks: []string{"991.alpha_r"}, PerBenchmark: 6, Seed: 2, K: 2}.Normalize(suite)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := harness.Options{Reps: 1, Workers: 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	units, err := Plan(suite, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type cell struct {
		idx int
		m   report.Measurement
	}
	var cells []cell
	err = harness.NewPlanRunner(units, opts).Stream(context.Background(), func(c harness.Cell, m report.Measurement) error {
		cells = append(cells, cell{c.Index, m})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	forward, reverse := NewAccumulator(cfg), NewAccumulator(cfg)
	for _, c := range cells {
		forward.Add(c.idx, c.m)
	}
	for i := len(cells) - 1; i >= 0; i-- {
		reverse.Add(cells[i].idx, cells[i].m)
	}
	a, err := forward.Report(opts.ReportConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := reverse.Report(opts.ReportConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("arrival order changed the report:\nforward: %+v\nreverse: %+v", a, b)
	}
}

// TestReportRejectsMissingCells proves a partial sweep cannot silently
// reduce: Report errors when any plan index was never delivered.
func TestReportRejectsMissingCells(t *testing.T) {
	suite := testSuite(t)
	cfg, err := Config{Benchmarks: []string{"991.alpha_r"}, PerBenchmark: 3, Seed: 1, K: 1}.Normalize(suite)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator(cfg)
	m := report.Measurement{Benchmark: "991.alpha_r", Workload: "gen.s1.2", Cycles: 100}
	acc.Add(2, m)
	if _, err := acc.Report(report.RunConfig{}); err == nil || !strings.Contains(err.Error(), "never delivered") {
		t.Errorf("partial reduction: err = %v, want missing-cell error", err)
	}
}

func TestFormat(t *testing.T) {
	suite := testSuite(t)
	cfg, err := Config{Benchmarks: []string{"991.alpha_r"}, PerBenchmark: 4, Seed: 3, K: 2}.Normalize(suite)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(streamInto(t, suite, cfg, 2))
	for _, want := range []string{
		"workload-space sweep: seed=3 n=4/benchmark k=2",
		"991.alpha_r: 4 workloads -> 2 representatives",
		"cluster 1 (representative ",
		"coverage loss: dropped=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}
