// Package leakcheck detects goroutines that outlive the code that
// spawned them, in the style of go.uber.org/goleak but stdlib-only: it
// snapshots runtime.Stack(all=true), parses the goroutine headers, and
// diffs against a baseline with retry/backoff so goroutines that are
// merely slow to exit are not misreported.
//
// Two entry points cover the repo's tests:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// fails the package if any non-baseline goroutine survives all tests —
// the drain gate for internal/service and internal/cluster — and
//
//	defer leakcheck.Check(t)
//
// (or Take()/Snapshot.Verify for a mid-test baseline) scopes the same
// diff to one test.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Goroutine is one parsed record from a runtime.Stack(all=true) dump.
type Goroutine struct {
	// ID is the runtime's goroutine id from the "goroutine N [state]:" header.
	ID int
	// State is the scheduler state inside the brackets ("running",
	// "chan receive", "IO wait", ...), minus any wait-duration suffix.
	State string
	// First is the topmost function on the stack.
	First string
	// Stack is the full record, for reporting.
	Stack string
}

func (g Goroutine) String() string {
	return fmt.Sprintf("goroutine %d [%s]: %s", g.ID, g.State, g.First)
}

// all captures and parses the current goroutine dump.
func all() []Goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return parse(string(buf))
}

// parse splits a runtime.Stack(all=true) dump into records.
func parse(dump string) []Goroutine {
	var out []Goroutine
	for _, rec := range strings.Split(dump, "\n\n") {
		lines := strings.Split(strings.TrimSpace(rec), "\n")
		if len(lines) == 0 {
			continue
		}
		header := lines[0]
		rest, ok := strings.CutPrefix(header, "goroutine ")
		if !ok {
			continue
		}
		idStr, stateRaw, ok := strings.Cut(rest, " [")
		if !ok {
			continue
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			continue
		}
		state := strings.TrimSuffix(stateRaw, "]:")
		// "chan receive, 2 minutes" → "chan receive"
		if s, _, found := strings.Cut(state, ","); found {
			state = s
		}
		first := ""
		if len(lines) > 1 {
			first = strings.TrimSpace(lines[1])
			// Trim the argument list, not a "(*T)" receiver: cut at the
			// last paren.
			if i := strings.LastIndex(first, "("); i >= 0 {
				first = first[:i]
			}
		}
		out = append(out, Goroutine{ID: id, State: state, First: first, Stack: rec})
	}
	return out
}

// ignoredStackFragments marks goroutines that belong to the runtime or
// the testing machinery rather than code under test: other tests'
// runners, the signal handler, and the trace reader are never leaks.
var ignoredStackFragments = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runTests",
	"testing.runFuzzing",
	"runtime.goexit0",
	"runtime.ensureSigM",
	"runtime.ReadTrace",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime/trace.Start",
}

func ignored(g Goroutine) bool {
	for _, frag := range ignoredStackFragments {
		if strings.Contains(g.Stack, frag) {
			return true
		}
	}
	return false
}

// Snapshot is a baseline set of goroutine ids to diff against.
type Snapshot struct {
	present map[int]bool
}

// Take snapshots the currently live goroutines.
func Take() Snapshot {
	s := Snapshot{present: map[int]bool{}}
	for _, g := range all() {
		s.present[g.ID] = true
	}
	return s
}

// leaks returns every live, non-ignored goroutine that is neither in the
// baseline nor the caller itself.
func (s Snapshot) leaks() []Goroutine {
	self := currentID()
	var out []Goroutine
	for _, g := range all() {
		if g.ID == self || s.present[g.ID] || ignored(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// maxRetries × growing backoff gives a goroutine that is already on its
// way out roughly 1.3s to disappear before it counts as a leak.
const maxRetries = 10

// retryLeaks re-diffs with exponential backoff until the diff is empty
// or the budget runs out.
func (s Snapshot) retryLeaks() []Goroutine {
	delay := 1 * time.Millisecond
	var out []Goroutine
	for i := 0; i < maxRetries; i++ {
		out = s.leaks()
		if len(out) == 0 {
			return nil
		}
		time.Sleep(delay)
		if delay < 500*time.Millisecond {
			delay *= 2
		}
	}
	return out
}

// currentID parses this goroutine's id from its own stack header.
func currentID() int {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	rest, _ := strings.CutPrefix(string(buf), "goroutine ")
	idStr, _, _ := strings.Cut(rest, " ")
	id, _ := strconv.Atoi(idStr)
	return id
}

// Verify fails t for every goroutine live now that was not in the
// snapshot, after the retry budget.
func (s Snapshot) Verify(t testing.TB) {
	t.Helper()
	for _, g := range s.retryLeaks() {
		t.Errorf("leaked %v\n%s", g, g.Stack)
	}
}

// Check fails t if any non-baseline goroutine is live — the zero
// baseline form for `defer leakcheck.Check(t)` at the top of a test that
// should start from a quiet process.
func Check(t testing.TB) {
	t.Helper()
	Snapshot{present: map[int]bool{}}.Verify(t)
}

// Main wraps testing.M.Run with a whole-package leak gate: the baseline
// is whatever is live before the first test, and any extra goroutine
// still live after the last test fails the package even when every test
// passed. Use from TestMain; it does not return.
func Main(m *testing.M) {
	base := Take()
	code := m.Run()
	if code == 0 {
		if leaked := base.retryLeaks(); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) outlived the test run:\n", len(leaked))
			for _, g := range leaked {
				fmt.Fprintf(os.Stderr, "%v\n%s\n", g, g.Stack)
			}
			code = 1
		}
	}
	os.Exit(code)
}
