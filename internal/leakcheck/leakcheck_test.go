package leakcheck

import (
	"strings"
	"testing"
	"time"
)

const sampleDump = `goroutine 1 [running]:
main.main()
	/src/main.go:10 +0x20

goroutine 7 [chan receive, 3 minutes]:
repro/internal/service.(*Server).worker(0xc000123000)
	/src/service.go:99 +0x45
created by repro/internal/service.NewServer
	/src/service.go:50 +0x91

goroutine 18 [syscall]:
os/signal.signal_recv()
	/usr/local/go/src/runtime/sigqueue.go:152 +0x29
created by os/signal.Notify.func1.1
	/usr/local/go/src/os/signal/signal.go:151 +0x1f`

func TestParse(t *testing.T) {
	gs := parse(sampleDump)
	if len(gs) != 3 {
		t.Fatalf("parsed %d goroutines, want 3", len(gs))
	}
	if gs[0].ID != 1 || gs[0].State != "running" || gs[0].First != "main.main" {
		t.Errorf("first record parsed as %+v", gs[0])
	}
	if gs[1].ID != 7 || gs[1].State != "chan receive" {
		t.Errorf("wait-duration suffix not stripped: %+v", gs[1])
	}
	if !strings.Contains(gs[1].First, "service.(*Server).worker") {
		t.Errorf("first function = %q", gs[1].First)
	}
}

func TestIgnored(t *testing.T) {
	gs := parse(sampleDump)
	if ignored(gs[1]) {
		t.Error("service worker goroutine must not be ignored")
	}
	if !ignored(gs[2]) {
		t.Error("signal_recv goroutine must be ignored")
	}
}

func TestSelfAndBaselineExcluded(t *testing.T) {
	// The running test goroutine carries tRunner frames and is also the
	// caller: a fresh snapshot must diff clean immediately.
	if leaked := Take().leaks(); len(leaked) != 0 {
		t.Fatalf("fresh snapshot reports leaks: %v", leaked)
	}
}

func TestDetectsAndClearsLeak(t *testing.T) {
	base := Take()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-release
		close(done)
	}()
	// The blocked goroutine must show up against the baseline...
	var leaked []Goroutine
	for i := 0; i < 100; i++ {
		if leaked = base.leaks(); len(leaked) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(leaked) != 1 {
		t.Fatalf("expected exactly the blocked goroutine, got %v", leaked)
	}
	if !strings.Contains(leaked[0].Stack, "leakcheck.TestDetectsAndClearsLeak") {
		t.Errorf("leak attributed to the wrong stack:\n%s", leaked[0].Stack)
	}
	// ...and the retrying diff must see it exit once released.
	close(release)
	<-done
	if leaked := base.retryLeaks(); len(leaked) != 0 {
		t.Errorf("released goroutine still reported: %v", leaked)
	}
}

func TestVerifyPasses(t *testing.T) {
	s := Take()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	// The short-lived goroutine is gone (or about to be); Verify's retry
	// budget must absorb it rather than fail the test.
	s.Verify(t)
}
