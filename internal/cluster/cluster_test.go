package cluster

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/harness/report"
	"repro/internal/leakcheck"
	"repro/internal/stats"
)

// TestMain enforces goroutine hygiene for the package: clustering is
// purely computational today, so the leak gate both documents that and
// catches any future parallel k-medoids sweep that forgets to join.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}

// blob builds a synthetic measurement around a top-down center.
func blob(name string, f, b, s, r float64, cycles uint64, hot string) report.Measurement {
	return report.Measurement{
		Workload: name,
		TopDown:  stats.TopDown{FrontEnd: f, BackEnd: b, BadSpec: s, Retiring: r},
		Cycles:   cycles,
		Coverage: stats.Coverage{hot: 0.8, "other": 0.2},
	}
}

func TestDistanceBasics(t *testing.T) {
	if d := Distance([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Errorf("distance = %v", d)
	}
	if d := Distance([]float64{1, 2}, []float64{1, 2}); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Distance([]float64{1}, []float64{1, 2})
}

func TestKMedoidsSeparatesBlobs(t *testing.T) {
	// Two well-separated groups of points; k=2 must split them exactly.
	points := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1},
		{5, 5}, {5.1, 5}, {5, 5.1},
	}
	cl, err := KMedoids(points, 2)
	if err != nil {
		t.Fatal(err)
	}
	groupOf := map[int]int{}
	for i, a := range cl.Assign {
		groupOf[i] = a
	}
	// All of the first four must share a slot; all of the last three the
	// other.
	for i := 1; i < 4; i++ {
		if groupOf[i] != groupOf[0] {
			t.Errorf("point %d split from its blob", i)
		}
	}
	for i := 5; i < 7; i++ {
		if groupOf[i] != groupOf[4] {
			t.Errorf("point %d split from its blob", i)
		}
	}
	if groupOf[0] == groupOf[4] {
		t.Error("blobs merged")
	}
}

func TestKMedoidsValidation(t *testing.T) {
	points := [][]float64{{1}, {2}}
	if _, err := KMedoids(points, 0); !errors.Is(err, ErrCluster) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := KMedoids(points, 3); !errors.Is(err, ErrCluster) {
		t.Errorf("k>n err = %v", err)
	}
}

func TestKMedoidsKEqualsN(t *testing.T) {
	points := [][]float64{{0}, {5}, {9}}
	cl, err := KMedoids(points, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Cost != 0 {
		t.Errorf("cost = %v, want 0 when every point is a medoid", cl.Cost)
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	points := [][]float64{
		{0, 1}, {1, 0}, {4, 4}, {5, 5}, {9, 0}, {8, 1}, {0.5, 0.5},
	}
	a, err := KMedoids(points, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMedoids(points, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Medoids {
		if a.Medoids[i] != b.Medoids[i] {
			t.Fatal("nondeterministic medoids")
		}
	}
}

func TestKMedoidsCostDecreasesWithK(t *testing.T) {
	points := [][]float64{
		{0, 0}, {1, 1}, {2, 2}, {6, 6}, {7, 7}, {10, 0}, {0, 10},
	}
	var prev float64 = math.Inf(1)
	for k := 1; k <= 4; k++ {
		cl, err := KMedoids(points, k)
		if err != nil {
			t.Fatal(err)
		}
		if cl.Cost > prev+1e-9 {
			t.Errorf("k=%d cost %v exceeds k=%d cost %v", k, cl.Cost, k-1, prev)
		}
		prev = cl.Cost
	}
}

func behaviourBlobs() []report.Measurement {
	return []report.Measurement{
		blob("mem1", 0.05, 0.70, 0.05, 0.20, 1e6, "copy"),
		blob("mem2", 0.06, 0.68, 0.05, 0.21, 1.1e6, "copy"),
		blob("cpu1", 0.05, 0.10, 0.05, 0.80, 1e6, "math"),
		blob("cpu2", 0.04, 0.12, 0.05, 0.79, 1.2e6, "math"),
		blob("spec1", 0.10, 0.20, 0.45, 0.25, 1e6, "search"),
	}
}

func TestSelectGroupsByBehaviour(t *testing.T) {
	ms := behaviourBlobs()
	sel, err := Select(ms, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Representatives) != 3 {
		t.Fatalf("reps = %v", sel.Representatives)
	}
	cl := sel.Clustering
	// The two memory-bound workloads must share a cluster, as must the
	// two compute-bound ones.
	if cl.Assign[0] != cl.Assign[1] {
		t.Error("mem workloads split")
	}
	if cl.Assign[2] != cl.Assign[3] {
		t.Error("cpu workloads split")
	}
	if cl.Assign[0] == cl.Assign[2] || cl.Assign[0] == cl.Assign[4] {
		t.Error("distinct behaviours merged")
	}
	text := FormatSelection("test_r", sel)
	if !strings.Contains(text, "cluster 1") || !strings.Contains(text, "representative") ||
		!strings.Contains(text, "coverage loss") {
		t.Errorf("format:\n%s", text)
	}
}

func TestSelectEmpty(t *testing.T) {
	if _, err := Select(nil, Options{K: 2}); !errors.Is(err, ErrCluster) {
		t.Errorf("err = %v", err)
	}
}

// TestSelectIncrementalMatchesOneShot proves the streaming accumulation
// path selects exactly what the one-shot path does, whatever order the
// points arrived in — the property that lets a parallel sweep feed
// completion-order measurements and still agree with a serial run.
func TestSelectIncrementalMatchesOneShot(t *testing.T) {
	ms := behaviourBlobs()
	want, err := Select(ms, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFeatureSpace(FeaturesCombined)
	for _, m := range ms {
		fs.AddPoint(fs.Compact(m))
	}
	got, err := fs.Select(Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("incremental selection differs:\n one-shot %+v\n incremental %+v", want, got)
	}
}

func TestSelectFeatureMismatch(t *testing.T) {
	fs := NewFeatureSpace(FeaturesTopDown)
	fs.Add(blob("a", 0.1, 0.4, 0.1, 0.4, 100, "x"))
	if _, err := fs.Select(Options{K: 1, Features: FeaturesCombined}); !errors.Is(err, ErrCluster) {
		t.Errorf("feature mismatch err = %v", err)
	}
	if _, err := fs.Select(Options{K: 1, Features: FeaturesTopDown}); err != nil {
		t.Errorf("matching features err = %v", err)
	}
}

func TestCompactDropsCoverageForTopDown(t *testing.T) {
	m := blob("a", 0.1, 0.4, 0.1, 0.4, 100, "x")
	if p := NewFeatureSpace(FeaturesTopDown).Compact(m); p.Coverage != nil {
		t.Error("topdown Compact retained the coverage map")
	}
	if p := NewFeatureSpace(FeaturesCombined).Compact(m); p.Coverage == nil {
		t.Error("combined Compact dropped the coverage map")
	}
}

func TestSelectCoverageLoss(t *testing.T) {
	ms := behaviourBlobs()
	sel, err := Select(ms, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Loss.Dropped != 2 {
		t.Errorf("dropped = %d, want 2", sel.Loss.Dropped)
	}
	if sel.Loss.MaxDistance <= 0 || sel.Loss.MeanDistance <= 0 {
		t.Errorf("loss = %+v, want positive distances", sel.Loss)
	}
	if sel.Loss.MeanDistance > sel.Loss.MaxDistance {
		t.Errorf("mean %v exceeds max %v", sel.Loss.MeanDistance, sel.Loss.MaxDistance)
	}
	// k = n keeps everything: zero loss.
	all, err := Select(ms, Options{K: len(ms)})
	if err != nil {
		t.Fatal(err)
	}
	if all.Loss != (CoverageLoss{}) {
		t.Errorf("k=n loss = %+v, want zero", all.Loss)
	}
}

func TestSelectSeedPerturbsInitDeterministically(t *testing.T) {
	ms := behaviourBlobs()
	for _, seed := range []int64{0, 1, 7} {
		a, err := Select(ms, Options{K: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Select(ms, Options{K: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: repeated selection differs", seed)
		}
		// Whatever the seeding, descent must keep the separable blobs
		// grouped: each pair together, the pairs apart.
		as := a.Clustering.Assign
		if as[0] != as[1] || as[2] != as[3] || as[0] == as[2] || as[0] == as[4] {
			t.Errorf("seed %d broke the blob partition: %v", seed, as)
		}
	}
}

func TestFeaturesStringRoundTrip(t *testing.T) {
	for _, f := range []Features{FeaturesCombined, FeaturesTopDown, FeaturesCoverage} {
		got, err := ParseFeatures(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFeatures(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFeatures("bogus"); !errors.Is(err, ErrCluster) {
		t.Errorf("bogus err = %v", err)
	}
}

func TestFeatureSpaceStableDimensions(t *testing.T) {
	fs := NewFeatureSpace(FeaturesCombined)
	fs.Add(blob("a", 0.1, 0.4, 0.1, 0.4, 100, "x"))
	fs.Add(blob("b", 0.1, 0.4, 0.1, 0.4, 100, "y"))
	vs := fs.Vectors()
	if len(vs[0]) != len(vs[1]) {
		t.Fatal("vectors have differing dimensions")
	}
	// Identical top-down but different hot methods → nonzero distance.
	if Distance(vs[0], vs[1]) == 0 {
		t.Error("method coverage should differentiate the vectors")
	}
	// The topdown embedding ignores methods entirely: same top-down and
	// cycles → zero distance.
	td := NewFeatureSpace(FeaturesTopDown)
	td.Add(blob("a", 0.1, 0.4, 0.1, 0.4, 100, "x"))
	td.Add(blob("b", 0.1, 0.4, 0.1, 0.4, 100, "y"))
	tv := td.Vectors()
	if Distance(tv[0], tv[1]) != 0 {
		t.Error("topdown embedding should ignore coverage")
	}
}
