package cluster

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/harness/report"
	"repro/internal/leakcheck"
	"repro/internal/stats"
)

// TestMain enforces goroutine hygiene for the package: clustering is
// purely computational today, so the leak gate both documents that and
// catches any future parallel k-medoids sweep that forgets to join.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}

// blob builds a synthetic measurement around a top-down center.
func blob(name string, f, b, s, r float64, cycles uint64, hot string) report.Measurement {
	return report.Measurement{
		Workload: name,
		TopDown:  stats.TopDown{FrontEnd: f, BackEnd: b, BadSpec: s, Retiring: r},
		Cycles:   cycles,
		Coverage: stats.Coverage{hot: 0.8, "other": 0.2},
	}
}

func TestDistanceBasics(t *testing.T) {
	if d := Distance([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Errorf("distance = %v", d)
	}
	if d := Distance([]float64{1, 2}, []float64{1, 2}); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Distance([]float64{1}, []float64{1, 2})
}

func TestKMedoidsSeparatesBlobs(t *testing.T) {
	// Two well-separated groups of points; k=2 must split them exactly.
	points := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1},
		{5, 5}, {5.1, 5}, {5, 5.1},
	}
	cl, err := KMedoids(points, 2)
	if err != nil {
		t.Fatal(err)
	}
	groupOf := map[int]int{}
	for i, a := range cl.Assign {
		groupOf[i] = a
	}
	// All of the first four must share a slot; all of the last three the
	// other.
	for i := 1; i < 4; i++ {
		if groupOf[i] != groupOf[0] {
			t.Errorf("point %d split from its blob", i)
		}
	}
	for i := 5; i < 7; i++ {
		if groupOf[i] != groupOf[4] {
			t.Errorf("point %d split from its blob", i)
		}
	}
	if groupOf[0] == groupOf[4] {
		t.Error("blobs merged")
	}
}

func TestKMedoidsValidation(t *testing.T) {
	points := [][]float64{{1}, {2}}
	if _, err := KMedoids(points, 0); !errors.Is(err, ErrCluster) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := KMedoids(points, 3); !errors.Is(err, ErrCluster) {
		t.Errorf("k>n err = %v", err)
	}
}

func TestKMedoidsKEqualsN(t *testing.T) {
	points := [][]float64{{0}, {5}, {9}}
	cl, err := KMedoids(points, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Cost != 0 {
		t.Errorf("cost = %v, want 0 when every point is a medoid", cl.Cost)
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	points := [][]float64{
		{0, 1}, {1, 0}, {4, 4}, {5, 5}, {9, 0}, {8, 1}, {0.5, 0.5},
	}
	a, err := KMedoids(points, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMedoids(points, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Medoids {
		if a.Medoids[i] != b.Medoids[i] {
			t.Fatal("nondeterministic medoids")
		}
	}
}

func TestKMedoidsCostDecreasesWithK(t *testing.T) {
	points := [][]float64{
		{0, 0}, {1, 1}, {2, 2}, {6, 6}, {7, 7}, {10, 0}, {0, 10},
	}
	var prev float64 = math.Inf(1)
	for k := 1; k <= 4; k++ {
		cl, err := KMedoids(points, k)
		if err != nil {
			t.Fatal(err)
		}
		if cl.Cost > prev+1e-9 {
			t.Errorf("k=%d cost %v exceeds k=%d cost %v", k, cl.Cost, k-1, prev)
		}
		prev = cl.Cost
	}
}

func TestRepresentativesGroupsByBehaviour(t *testing.T) {
	ms := []report.Measurement{
		blob("mem1", 0.05, 0.70, 0.05, 0.20, 1e6, "copy"),
		blob("mem2", 0.06, 0.68, 0.05, 0.21, 1.1e6, "copy"),
		blob("cpu1", 0.05, 0.10, 0.05, 0.80, 1e6, "math"),
		blob("cpu2", 0.04, 0.12, 0.05, 0.79, 1.2e6, "math"),
		blob("spec1", 0.10, 0.20, 0.45, 0.25, 1e6, "search"),
	}
	reps, cl, err := Representatives(ms, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("reps = %v", reps)
	}
	// The two memory-bound workloads must share a cluster, as must the
	// two compute-bound ones.
	if cl.Assign[0] != cl.Assign[1] {
		t.Error("mem workloads split")
	}
	if cl.Assign[2] != cl.Assign[3] {
		t.Error("cpu workloads split")
	}
	if cl.Assign[0] == cl.Assign[2] || cl.Assign[0] == cl.Assign[4] {
		t.Error("distinct behaviours merged")
	}
	text := FormatClustering("test_r", ms, cl, reps)
	if !strings.Contains(text, "cluster 1") || !strings.Contains(text, "representative") {
		t.Errorf("format:\n%s", text)
	}
}

func TestRepresentativesEmpty(t *testing.T) {
	if _, _, err := Representatives(nil, 2); !errors.Is(err, ErrCluster) {
		t.Errorf("err = %v", err)
	}
}

func TestFeatureSpaceStableDimensions(t *testing.T) {
	ms := []report.Measurement{
		blob("a", 0.1, 0.4, 0.1, 0.4, 100, "x"),
		blob("b", 0.1, 0.4, 0.1, 0.4, 100, "y"),
	}
	fs := NewFeatureSpace(ms)
	va := fs.Vector(ms[0])
	vb := fs.Vector(ms[1])
	if len(va) != len(vb) {
		t.Fatal("vectors have differing dimensions")
	}
	// Identical top-down but different hot methods → nonzero distance.
	if Distance(va, vb) == 0 {
		t.Error("method coverage should differentiate the vectors")
	}
}
