// Package cluster implements the workload-reduction methodology the paper
// cites as Berube's CGO 2009 work ("Workload reduction for multi-input
// profile-directed optimization") and lists among its Section VII research
// directions: when a benchmark has many workloads, cluster them by
// behaviour and keep one representative per cluster, so FDO training and
// characterization stay affordable without collapsing behavioural
// diversity.
//
// Workloads are embedded as behaviour vectors (top-down fractions plus
// log-scaled modeled cycles and/or the method-coverage distribution,
// chosen by Features) and clustered with deterministic k-medoids
// (PAM-style swap descent). The FeatureSpace accumulates points
// incrementally — a streaming sweep Adds each measurement as it completes
// and releases it; only the compact Point survives — and Select runs the
// reduction over everything accumulated, reporting the coverage loss of
// the dropped workloads.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/harness/report"
)

// ErrCluster reports an invalid clustering request.
var ErrCluster = errors.New("cluster: invalid request")

// Features selects the behaviour embedding.
type Features int

const (
	// FeaturesCombined embeds the four top-down fractions, a log-cycles
	// scale term, and one dimension per method (coverage fraction).
	FeaturesCombined Features = iota
	// FeaturesTopDown embeds only the top-down fractions and the
	// log-cycles term — O(1) state per point, the choice for
	// allocation-bounded sweeps.
	FeaturesTopDown
	// FeaturesCoverage embeds only the method-coverage distribution.
	FeaturesCoverage
)

// String names the feature space (the -features flag vocabulary).
func (f Features) String() string {
	switch f {
	case FeaturesCombined:
		return "combined"
	case FeaturesTopDown:
		return "topdown"
	case FeaturesCoverage:
		return "coverage"
	}
	return fmt.Sprintf("Features(%d)", int(f))
}

// ParseFeatures is the inverse of String.
func ParseFeatures(s string) (Features, error) {
	switch s {
	case "combined":
		return FeaturesCombined, nil
	case "topdown":
		return FeaturesTopDown, nil
	case "coverage":
		return FeaturesCoverage, nil
	}
	return 0, fmt.Errorf("%w: unknown feature space %q (want combined, topdown or coverage)", ErrCluster, s)
}

func (f Features) usesTopDown() bool  { return f != FeaturesCoverage }
func (f Features) usesCoverage() bool { return f != FeaturesTopDown }

// Options configures a selection run.
type Options struct {
	// K is the number of representatives to keep. Required; must be
	// 1 <= K <= number of points.
	K int
	// Features picks the behaviour embedding. The zero value is
	// FeaturesCombined.
	Features Features
	// Seed perturbs the deterministic k-medoids initialization: 0 keeps
	// the canonical greedy max-min seeding; any other value starts the
	// seeding from a seed-derived point instead. Same seed, same points,
	// same selection — always.
	Seed int64
}

// Point is the compact per-workload state a FeatureSpace retains: the
// behaviour features of one measurement, never the measurement itself.
type Point struct {
	Name    string
	TopDown [4]float64 // front-end, back-end, bad-spec, retiring
	Cycles  uint64
	// Coverage is nil unless the feature space embeds coverage.
	Coverage map[string]float64
}

// FeatureSpace accumulates behaviour points and embeds them into
// comparable vectors. Dimensions are fixed by the Features choice plus
// the union of method names seen, computed at Select time so points can
// arrive incrementally in any order.
type FeatureSpace struct {
	features Features
	points   []Point
}

// NewFeatureSpace returns an empty accumulator over the given embedding.
func NewFeatureSpace(f Features) *FeatureSpace {
	return &FeatureSpace{features: f}
}

// Features returns the embedding this space was built with.
func (fs *FeatureSpace) Features() Features { return fs.features }

// Len is the number of points accumulated.
func (fs *FeatureSpace) Len() int { return len(fs.points) }

// Compact reduces a measurement to the point state this feature space
// needs: top-down fractions and cycles always, the coverage map only when
// the embedding uses it. The returned Point shares the measurement's
// Coverage map in that case — everything else in the measurement is free
// to be released.
func (fs *FeatureSpace) Compact(m report.Measurement) Point {
	p := Point{
		Name:    m.Workload,
		TopDown: [4]float64{m.TopDown.FrontEnd, m.TopDown.BackEnd, m.TopDown.BadSpec, m.TopDown.Retiring},
		Cycles:  m.Cycles,
	}
	if fs.features.usesCoverage() {
		p.Coverage = m.Coverage
	}
	return p
}

// Add accumulates one measurement (Compact + AddPoint).
func (fs *FeatureSpace) Add(m report.Measurement) {
	fs.AddPoint(fs.Compact(m))
}

// AddPoint accumulates an already-compacted point.
func (fs *FeatureSpace) AddPoint(p Point) {
	fs.points = append(fs.points, p)
}

// Names returns the accumulated point names in insertion order.
func (fs *FeatureSpace) Names() []string {
	names := make([]string, len(fs.points))
	for i, p := range fs.points {
		names[i] = p.Name
	}
	return names
}

// Vectors embeds every accumulated point, in insertion order. The
// coverage dimensions are the sorted union of method names over all
// points, so the embedding depends only on the point set, not on arrival
// order.
func (fs *FeatureSpace) Vectors() [][]float64 {
	var methods []string
	if fs.features.usesCoverage() {
		seen := map[string]bool{}
		for _, p := range fs.points {
			for meth := range p.Coverage {
				seen[meth] = true
			}
		}
		for meth := range seen {
			methods = append(methods, meth)
		}
		sort.Strings(methods)
	}
	vs := make([][]float64, len(fs.points))
	for i, p := range fs.points {
		v := make([]float64, 0, 5+len(methods))
		if fs.features.usesTopDown() {
			v = append(v, p.TopDown[0], p.TopDown[1], p.TopDown[2], p.TopDown[3],
				// Scale matters but should not dominate: compress with
				// log10 and a modest weight.
				0.25*math.Log10(float64(p.Cycles+1)),
			)
		}
		for _, meth := range methods {
			v = append(v, p.Coverage[meth])
		}
		vs[i] = v
	}
	return vs
}

// Distance is the Euclidean distance between behaviour vectors.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("cluster: dimension mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Clustering is a k-medoids result.
type Clustering struct {
	// Medoids are indices into the input point set.
	Medoids []int
	// Assign[i] is the medoid-slot index of point i.
	Assign []int
	// Cost is the total distance of points to their medoids.
	Cost float64
}

// CoverageLoss quantifies what dropping the non-representative workloads
// costs: the distance of each dropped point to its retained
// representative, summarized as max and mean. Zero loss means the kept
// subset reproduces every dropped behaviour exactly (or nothing was
// dropped).
type CoverageLoss struct {
	// Dropped is the number of non-representative points.
	Dropped int `json:"dropped"`
	// MaxDistance is the worst-represented dropped point's distance to
	// its representative.
	MaxDistance float64 `json:"max_distance"`
	// MeanDistance is the mean such distance over all dropped points
	// (0 when none were dropped).
	MeanDistance float64 `json:"mean_distance"`
}

// Selection is the result of a representative-subset reduction.
type Selection struct {
	// Representatives are the medoid point names, in medoid index order.
	Representatives []string
	// Names are all point names in insertion order; Clustering indices
	// refer to this slice.
	Names []string
	// Clustering is the underlying k-medoids result.
	Clustering Clustering
	// Loss quantifies the coverage cost of keeping only the
	// representatives.
	Loss CoverageLoss
}

// Select clusters everything accumulated and picks opts.K
// representatives. opts.Features must match the embedding the space was
// built with — the option exists so one Options value can drive both
// construction and selection.
func (fs *FeatureSpace) Select(opts Options) (Selection, error) {
	if opts.Features != fs.features {
		return Selection{}, fmt.Errorf("%w: options feature space %v does not match accumulator %v",
			ErrCluster, opts.Features, fs.features)
	}
	if len(fs.points) == 0 {
		return Selection{}, fmt.Errorf("%w: no points", ErrCluster)
	}
	vectors := fs.Vectors()
	cl, err := kMedoids(vectors, opts.K, opts.Seed)
	if err != nil {
		return Selection{}, err
	}
	sel := Selection{
		Names:      fs.Names(),
		Clustering: cl,
	}
	for _, m := range cl.Medoids {
		sel.Representatives = append(sel.Representatives, fs.points[m].Name)
	}
	// Coverage loss: distance of each dropped (non-medoid) point to its
	// representative.
	sum := 0.0
	for i, slot := range cl.Assign {
		if isMedoid(cl.Medoids, i) {
			continue
		}
		d := Distance(vectors[i], vectors[cl.Medoids[slot]])
		sel.Loss.Dropped++
		sum += d
		if d > sel.Loss.MaxDistance {
			sel.Loss.MaxDistance = d
		}
	}
	if sel.Loss.Dropped > 0 {
		sel.Loss.MeanDistance = sum / float64(sel.Loss.Dropped)
	}
	return sel, nil
}

// Select embeds the measurements under opts.Features and reduces them to
// opts.K representatives — the one-shot convenience over the incremental
// FeatureSpace path.
func Select(ms []report.Measurement, opts Options) (Selection, error) {
	fs := NewFeatureSpace(opts.Features)
	for _, m := range ms {
		fs.Add(m)
	}
	return fs.Select(opts)
}

// KMedoids clusters points into k groups with PAM-style swap descent and
// the canonical deterministic initialization (greedy max-min seeding from
// the medoid of the whole set).
func KMedoids(points [][]float64, k int) (Clustering, error) {
	return kMedoids(points, k, 0)
}

func kMedoids(points [][]float64, k int, seed int64) (Clustering, error) {
	n := len(points)
	if k < 1 || k > n {
		return Clustering{}, fmt.Errorf("%w: k=%d for %d points", ErrCluster, k, n)
	}
	// Pairwise distances.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = Distance(points[i], points[j])
		}
	}
	// First medoid: the 1-medoid of the whole set (minimum total
	// distance) for seed 0; a seed-derived point otherwise. Either way
	// the choice is a pure function of (points, seed).
	best := 0
	if seed == 0 {
		bestSum := math.Inf(1)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += dist[i][j]
			}
			if s < bestSum {
				best, bestSum = i, s
			}
		}
	} else {
		// splitmix64 finalizer: spreads consecutive seeds over the index
		// range so seed 1 and seed 2 start from unrelated points.
		z := uint64(seed) + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		best = int(z % uint64(n))
	}
	medoids := []int{best}
	// Max-min seeding for the rest.
	for len(medoids) < k {
		far := -1
		farDist := -1.0
		for i := 0; i < n; i++ {
			d := math.Inf(1)
			for _, m := range medoids {
				if dist[i][m] < d {
					d = dist[i][m]
				}
			}
			if d > farDist {
				far, farDist = i, d
			}
		}
		medoids = append(medoids, far)
	}

	assign := make([]int, n)
	assignAll := func() float64 {
		total := 0.0
		for i := 0; i < n; i++ {
			bestSlot := 0
			bestD := math.Inf(1)
			for s, m := range medoids {
				if dist[i][m] < bestD {
					bestD = dist[i][m]
					bestSlot = s
				}
			}
			assign[i] = bestSlot
			total += bestD
		}
		return total
	}
	cost := assignAll()

	// Swap descent: try replacing each medoid with each non-medoid.
	improved := true
	for iter := 0; improved && iter < 100; iter++ {
		improved = false
		for slot := range medoids {
			orig := medoids[slot]
			for cand := 0; cand < n; cand++ {
				if isMedoid(medoids, cand) {
					continue
				}
				medoids[slot] = cand
				if c := totalCost(dist, medoids); c+1e-12 < cost {
					cost = c
					improved = true
				} else {
					medoids[slot] = orig
				}
			}
		}
	}
	cost = assignAll()
	sort.Ints(medoids)
	cost = assignAll()
	return Clustering{Medoids: medoids, Assign: assign, Cost: cost}, nil
}

func isMedoid(medoids []int, i int) bool {
	for _, m := range medoids {
		if m == i {
			return true
		}
	}
	return false
}

func totalCost(dist [][]float64, medoids []int) float64 {
	total := 0.0
	for i := range dist {
		best := math.Inf(1)
		for _, m := range medoids {
			if dist[i][m] < best {
				best = dist[i][m]
			}
		}
		total += best
	}
	return total
}

// FormatSelection renders a benchmark's reduction: the clusters with
// their representatives and members, then the coverage-loss summary.
func FormatSelection(benchmark string, sel Selection) string {
	cl := sel.Clustering
	out := fmt.Sprintf("workload clusters: %s (k=%d, cost=%.4f)\n", benchmark, len(cl.Medoids), cl.Cost)
	for slot, medoid := range cl.Medoids {
		out += fmt.Sprintf("  cluster %d (representative %s):", slot+1, sel.Names[medoid])
		for i, a := range cl.Assign {
			if a == slot {
				out += " " + sel.Names[i]
			}
		}
		out += "\n"
	}
	out += fmt.Sprintf("  coverage loss: dropped=%d max=%.4f mean=%.4f\n",
		sel.Loss.Dropped, sel.Loss.MaxDistance, sel.Loss.MeanDistance)
	return out
}
