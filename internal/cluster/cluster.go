// Package cluster implements the workload-reduction methodology the paper
// cites as Berube's CGO 2009 work ("Workload reduction for multi-input
// profile-directed optimization") and lists among its Section VII research
// directions: when a benchmark has many workloads, cluster them by
// behaviour and keep one representative per cluster, so FDO training and
// characterization stay affordable without collapsing behavioural
// diversity.
//
// Workloads are embedded as behaviour vectors (top-down fractions plus
// log-scaled modeled cycles and the method-coverage distribution) and
// clustered with deterministic k-medoids (PAM-style swap descent).
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/harness/report"
)

// ErrCluster reports an invalid clustering request.
var ErrCluster = errors.New("cluster: invalid request")

// FeatureSpace maps measurements into comparable vectors: the four
// top-down fractions, a log-cycles scale term, and one dimension per
// method seen in any measurement (coverage fraction).
type FeatureSpace struct {
	methods []string
}

// NewFeatureSpace builds the embedding from the union of methods.
func NewFeatureSpace(ms []report.Measurement) *FeatureSpace {
	seen := map[string]bool{}
	for _, m := range ms {
		for meth := range m.Coverage {
			seen[meth] = true
		}
	}
	fs := &FeatureSpace{}
	for meth := range seen {
		fs.methods = append(fs.methods, meth)
	}
	sort.Strings(fs.methods)
	return fs
}

// Vector embeds one measurement.
func (fs *FeatureSpace) Vector(m report.Measurement) []float64 {
	v := make([]float64, 0, 5+len(fs.methods))
	v = append(v,
		m.TopDown.FrontEnd, m.TopDown.BackEnd, m.TopDown.BadSpec, m.TopDown.Retiring,
		// Scale matters but should not dominate: compress with log10 and
		// a modest weight.
		0.25*math.Log10(float64(m.Cycles+1)),
	)
	for _, meth := range fs.methods {
		v = append(v, m.Coverage[meth])
	}
	return v
}

// Distance is the Euclidean distance between behaviour vectors.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("cluster: dimension mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Clustering is a k-medoids result.
type Clustering struct {
	// Medoids are indices into the input point set.
	Medoids []int
	// Assign[i] is the medoid-slot index of point i.
	Assign []int
	// Cost is the total distance of points to their medoids.
	Cost float64
}

// KMedoids clusters points into k groups with PAM-style swap descent. The
// initialization is deterministic (greedy max-min seeding from the medoid
// of the whole set), so results are reproducible.
func KMedoids(points [][]float64, k int) (Clustering, error) {
	n := len(points)
	if k < 1 || k > n {
		return Clustering{}, fmt.Errorf("%w: k=%d for %d points", ErrCluster, k, n)
	}
	// Pairwise distances.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = Distance(points[i], points[j])
		}
	}
	// Seed 1: the 1-medoid of the whole set (minimum total distance).
	best := 0
	bestSum := math.Inf(1)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += dist[i][j]
		}
		if s < bestSum {
			best, bestSum = i, s
		}
	}
	medoids := []int{best}
	// Max-min seeding for the rest.
	for len(medoids) < k {
		far := -1
		farDist := -1.0
		for i := 0; i < n; i++ {
			d := math.Inf(1)
			for _, m := range medoids {
				if dist[i][m] < d {
					d = dist[i][m]
				}
			}
			if d > farDist {
				far, farDist = i, d
			}
		}
		medoids = append(medoids, far)
	}

	assign := make([]int, n)
	assignAll := func() float64 {
		total := 0.0
		for i := 0; i < n; i++ {
			bestSlot := 0
			bestD := math.Inf(1)
			for s, m := range medoids {
				if dist[i][m] < bestD {
					bestD = dist[i][m]
					bestSlot = s
				}
			}
			assign[i] = bestSlot
			total += bestD
		}
		return total
	}
	cost := assignAll()

	// Swap descent: try replacing each medoid with each non-medoid.
	improved := true
	for iter := 0; improved && iter < 100; iter++ {
		improved = false
		for slot := range medoids {
			orig := medoids[slot]
			for cand := 0; cand < n; cand++ {
				if isMedoid(medoids, cand) {
					continue
				}
				medoids[slot] = cand
				if c := totalCost(dist, medoids); c+1e-12 < cost {
					cost = c
					improved = true
				} else {
					medoids[slot] = orig
				}
			}
		}
	}
	cost = assignAll()
	sort.Ints(medoids)
	cost = assignAll()
	return Clustering{Medoids: medoids, Assign: assign, Cost: cost}, nil
}

func isMedoid(medoids []int, i int) bool {
	for _, m := range medoids {
		if m == i {
			return true
		}
	}
	return false
}

func totalCost(dist [][]float64, medoids []int) float64 {
	total := 0.0
	for i := range dist {
		best := math.Inf(1)
		for _, m := range medoids {
			if dist[i][m] < best {
				best = dist[i][m]
			}
		}
		total += best
	}
	return total
}

// Representatives clusters a benchmark's measurements and returns the
// medoid workload names — the reduced workload set.
func Representatives(ms []report.Measurement, k int) ([]string, *Clustering, error) {
	if len(ms) == 0 {
		return nil, nil, fmt.Errorf("%w: no measurements", ErrCluster)
	}
	fs := NewFeatureSpace(ms)
	points := make([][]float64, len(ms))
	for i, m := range ms {
		points[i] = fs.Vector(m)
	}
	cl, err := KMedoids(points, k)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, 0, k)
	for _, m := range cl.Medoids {
		names = append(names, ms[m].Workload)
	}
	return names, &cl, nil
}

// FormatClustering renders a benchmark's cluster assignment.
func FormatClustering(benchmark string, ms []report.Measurement, cl *Clustering, reps []string) string {
	out := fmt.Sprintf("workload clusters: %s (k=%d, cost=%.4f)\n", benchmark, len(cl.Medoids), cl.Cost)
	for slot, medoid := range cl.Medoids {
		out += fmt.Sprintf("  cluster %d (representative %s):", slot+1, ms[medoid].Workload)
		for i, a := range cl.Assign {
			if a == slot {
				out += " " + ms[i].Workload
			}
		}
		out += "\n"
	}
	return out
}
