package phase

import (
	"reflect"
	"testing"

	"repro/internal/perf"
)

// synthSigs builds a stream alternating between two synthetic phases: runs
// of intervals dominated by bucket groups around a and b.
func synthSigs(n int, runLen int) []perf.IntervalSignature {
	sigs := make([]perf.IntervalSignature, n)
	for i := range sigs {
		base := 3
		if (i/runLen)%2 == 1 {
			base = 40
		}
		for d := 0; d < 4; d++ {
			sigs[i][(base+d)%perf.SigDims] = uint32(100 + d)
		}
	}
	return sigs
}

func TestBuildPlanShortStreamIsExact(t *testing.T) {
	sigs := synthSigs(5, 2)
	plan, err := BuildPlan(sigs, Config{IntervalOps: 1 << 10, Phases: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Clustered {
		t.Fatal("short stream should not cluster")
	}
	if len(plan.Weights) != 5 || plan.LiveIntervals() != 5 {
		t.Fatalf("want 5 all-live intervals, got %d live of %d", plan.LiveIntervals(), len(plan.Weights))
	}
	for i, w := range plan.Weights {
		if w != 1 {
			t.Fatalf("weight[%d] = %d, want 1", i, w)
		}
	}
}

func TestBuildPlanWeightsConserveIntervals(t *testing.T) {
	const k, stratum = 4, 25
	sigs := synthSigs(100, 10)
	plan, err := BuildPlan(sigs, Config{IntervalOps: 1 << 10, Phases: k, Stratum: stratum, MinIntervals: k + 3})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Clustered {
		t.Fatal("expected a clustered plan")
	}
	if plan.Weights[0] != 1 || plan.Weights[len(plan.Weights)-1] != 1 {
		t.Fatalf("first/last intervals must be pinned at weight 1, got %d/%d",
			plan.Weights[0], plan.Weights[len(plan.Weights)-1])
	}
	sum := uint64(0)
	for _, w := range plan.Weights {
		sum += uint64(w)
	}
	if sum != 100 {
		t.Fatalf("weights sum to %d, want 100: every interval must be represented exactly once", sum)
	}
	// Pinned ends + at most one earliest-pin per cluster + one
	// representative per stratum of the 98 interior intervals.
	if live, max := plan.LiveIntervals(), 2+2*k+(98+stratum-1)/stratum; live > max {
		t.Fatalf("%d live intervals exceed the stratified bound %d", live, max)
	}
	// A clean two-phase alternation should place live weight on both
	// phase shapes, not collapse onto one.
	if live := plan.LiveIntervals(); live < 3 {
		t.Fatalf("only %d live intervals for a two-phase stream", live)
	}
}

// TestBuildPlanMinIntervalsDegeneratesToExact: a stream below the sampling
// threshold — even one long enough to cluster — must fall back to the
// all-ones exact plan rather than sample with too few intervals.
func TestBuildPlanMinIntervalsDegeneratesToExact(t *testing.T) {
	sigs := synthSigs(150, 10)
	plan, err := BuildPlan(sigs, Config{IntervalOps: 1 << 10, Phases: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Clustered {
		t.Fatalf("150 intervals is under DefaultMinIntervals=%d and must not cluster", DefaultMinIntervals)
	}
	if plan.LiveIntervals() != 150 {
		t.Fatalf("degenerate plan must keep all 150 intervals live, got %d", plan.LiveIntervals())
	}
}

func TestBuildPlanDeterministic(t *testing.T) {
	sigs := synthSigs(200, 7)
	a, err := BuildPlan(sigs, Config{IntervalOps: 1 << 12, Phases: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(sigs, Config{IntervalOps: 1 << 12, Phases: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BuildPlan is not deterministic for identical inputs")
	}
}

func TestBuildPlanCoarsens(t *testing.T) {
	sigs := synthSigs(2000, 25)
	plan, err := BuildPlan(sigs, Config{IntervalOps: 1 << 10, Phases: 8, MaxIntervals: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Weights) != 500 {
		t.Fatalf("2000 intervals at cap 512 should merge 4-wise into 500, got %d", len(plan.Weights))
	}
	if plan.IntervalOps != 4<<10 {
		t.Fatalf("coarsened interval size = %d, want %d", plan.IntervalOps, 4<<10)
	}
	sum := uint64(0)
	for _, w := range plan.Weights {
		sum += uint64(w)
	}
	if sum != 500 {
		t.Fatalf("weights sum to %d, want 500", sum)
	}
}

func TestBuildPlanRejectsBadConfig(t *testing.T) {
	sigs := synthSigs(10, 2)
	if _, err := BuildPlan(sigs, Config{IntervalOps: 0}); err == nil {
		t.Fatal("zero interval must be rejected")
	}
	if _, err := BuildPlan(sigs, Config{IntervalOps: 1024, Phases: -1}); err == nil {
		t.Fatal("negative phases must be rejected")
	}
	if _, err := BuildPlan(sigs, Config{IntervalOps: 1024, Phases: 8, MaxIntervals: 5}); err == nil {
		t.Fatal("cap below phases+3 must be rejected")
	}
	if _, err := BuildPlan(sigs, Config{IntervalOps: 1024, Phases: 8, Stratum: -2}); err == nil {
		t.Fatal("negative stratum must be rejected")
	}
	if _, err := BuildPlan(sigs, Config{IntervalOps: 1024, Phases: 8, MinIntervals: -1}); err == nil {
		t.Fatal("negative min intervals must be rejected")
	}
}
