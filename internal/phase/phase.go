// Package phase turns the interval signatures of a perf profile pass into
// a perf.SamplePlan: which intervals a sampled measure pass fully
// simulates, and the extrapolation weight of each. It is the bridge
// between perf (which cannot import internal/cluster — the dependency
// would cycle through report → core → perf) and the k-medoids machinery
// that picks the representative intervals.
package phase

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/perf"
)

// DefaultPhases is the default cluster count: sixteen phases resolves the
// alternation patterns of the suite's kernels without fragmenting short
// streams.
const DefaultPhases = 16

// DefaultStratum caps how many cluster members one simulated representative
// may stand for. Control-flow signatures cannot see time-evolving simulator
// state — a compression window or software cache fills over the run, so two
// intervals with identical BBVs can have very different hit rates — and a
// single medoid weighted by a huge cluster inherits that blindness (an
// early, cache-cold medoid measured xz's llc_hits 34% low). Splitting each
// cluster into time-ordered strata of at most this many members and
// simulating each stratum's temporal median bounds the extrapolation span.
// Sixteen balanced accuracy against live-interval count in the tuning
// sweep; 24 left double-digit errors on drift-heavy counters.
const DefaultStratum = 16

// DefaultMinIntervals is the shortest stream worth sampling. Below ~200
// intervals the live set a clustered plan needs (pinned ends, earliest-pins,
// one representative per stratum) approaches the stream itself, so the
// speedup is negligible while sparse counters still pick up sampling noise
// — the suite's short streams (xalancbmk at 165 intervals, lbm at 122)
// measured multi-percent errors for under 2x gain. Such streams degenerate
// to the all-ones exact plan instead.
const DefaultMinIntervals = 192

// Config controls plan construction.
type Config struct {
	// IntervalOps is the profile pass's interval size in retired ops.
	IntervalOps uint64
	// Phases is the cluster count k; 0 means DefaultPhases.
	Phases int
	// MaxIntervals caps the interval count fed to the clusterer; longer
	// streams are coarsened by merging adjacent intervals (doubling the
	// effective interval size) until they fit. 0 means
	// perf.DefaultMaxIntervals.
	MaxIntervals int
	// Stratum caps the cluster members one representative stands for; 0
	// means DefaultStratum.
	Stratum int
	// MinIntervals is the shortest (post-coarsening) stream that gets a
	// clustered plan; anything shorter degenerates to exact. 0 means
	// DefaultMinIntervals; it is clamped up to Phases+3, the hard floor
	// below which clustering is impossible.
	MinIntervals int
}

// BuildPlan clusters a profile pass's signatures and returns the measure
// plan. The first and last intervals are always simulated with weight 1
// (cold-start transient and tail, respectively); the interior intervals
// are clustered with deterministic k-medoids, each cluster is split into
// time-ordered strata of at most Stratum members, and each stratum's
// temporal-median member carries the stratum's population as its weight —
// so every skipped interval is represented exactly once, by a
// control-flow-similar interval from its own era of the run. Streams too
// short to sample — fewer than Config.MinIntervals after coarsening — get
// an all-ones plan (Clustered=false): the measurement degenerates to exact
// simulation with zero error.
func BuildPlan(sigs []perf.IntervalSignature, cfg Config) (*perf.SamplePlan, error) {
	if cfg.IntervalOps == 0 {
		return nil, fmt.Errorf("phase: interval size must be >= 1 op")
	}
	k := cfg.Phases
	if k == 0 {
		k = DefaultPhases
	}
	if k < 1 {
		return nil, fmt.Errorf("phase: phases must be >= 1 (got %d)", k)
	}
	maxIntervals := cfg.MaxIntervals
	if maxIntervals == 0 {
		maxIntervals = perf.DefaultMaxIntervals
	}
	if maxIntervals < k+3 {
		return nil, fmt.Errorf("phase: max intervals %d cannot hold %d phases plus pinned ends", maxIntervals, k)
	}
	stratum := cfg.Stratum
	if stratum == 0 {
		stratum = DefaultStratum
	}
	if stratum < 1 {
		return nil, fmt.Errorf("phase: stratum must be >= 1 (got %d)", stratum)
	}
	minIntervals := cfg.MinIntervals
	if minIntervals == 0 {
		minIntervals = DefaultMinIntervals
	}
	if minIntervals < 0 {
		return nil, fmt.Errorf("phase: min intervals must be >= 0 (got %d)", minIntervals)
	}
	if minIntervals < k+3 {
		minIntervals = k + 3
	}

	sigs, intervalOps := coarsen(sigs, cfg.IntervalOps, maxIntervals)
	n := len(sigs)

	// Short stream: every interval is simulated, nothing is extrapolated.
	if n < minIntervals {
		weights := make([]uint32, n)
		for i := range weights {
			weights[i] = 1
		}
		return &perf.SamplePlan{IntervalOps: intervalOps, Weights: weights, Phases: k, Clustered: false}, nil
	}

	// Cluster the interior intervals 1..n-2 on their normalized frequency
	// vectors; normalization makes the distance a shape comparison, so a
	// partial-length interval clusters with full ones of the same phase.
	points := make([][]float64, 0, n-2)
	for i := 1; i < n-1; i++ {
		points = append(points, normalize(sigs[i]))
	}
	cl, err := cluster.KMedoids(points, k)
	if err != nil {
		return nil, fmt.Errorf("phase: %w", err)
	}

	weights := make([]uint32, n)
	weights[0] = 1
	weights[n-1] = 1
	// Point j is interior interval j+1. Gather each cluster's members in
	// time order, split them into strata of at most strataSpan, and weight
	// each stratum's temporal-median member with the stratum's population:
	// every skipped interval is represented exactly once, by a
	// control-flow-similar interval from its own era of the run.
	members := make([][]int, k)
	for j, slot := range cl.Assign {
		members[slot] = append(members[slot], j+1)
	}
	for _, ms := range members {
		for a := 0; a < len(ms); a += stratum {
			b := a + stratum
			if b > len(ms) {
				b = len(ms)
			}
			weights[ms[(a+b-1)/2]] += uint32(b - a)
		}
		// Pin the cluster's earliest interval live at weight 1, carved out
		// of its stratum's representative. A phase's first interval carries
		// the phase's compulsory misses — first touches of its code and
		// data — which happen once in the exact stream and so must be
		// counted exactly once, not zero times (skipped) or stratum-weight
		// times (extrapolated).
		if len(ms) > 0 && weights[ms[0]] == 0 {
			b := stratum
			if b > len(ms) {
				b = len(ms)
			}
			weights[ms[(b-1)/2]]--
			weights[ms[0]] = 1
		}
	}
	return &perf.SamplePlan{IntervalOps: intervalOps, Weights: weights, Phases: k, Clustered: true}, nil
}

// coarsen merges adjacent intervals in power-of-two groups until at most
// maxIntervals remain, returning the merged signatures and the effective
// interval size. Boundaries of the coarse grid are a subset of the fine
// grid's, so a measure pass ticking at the coarse size lands on the same
// op positions the profile pass crossed.
func coarsen(sigs []perf.IntervalSignature, intervalOps uint64, maxIntervals int) ([]perf.IntervalSignature, uint64) {
	group := 1
	for (len(sigs)+group-1)/group > maxIntervals {
		group *= 2
	}
	if group == 1 {
		return sigs, intervalOps
	}
	merged := make([]perf.IntervalSignature, 0, (len(sigs)+group-1)/group)
	for base := 0; base < len(sigs); base += group {
		var sum perf.IntervalSignature
		end := base + group
		if end > len(sigs) {
			end = len(sigs)
		}
		for _, sig := range sigs[base:end] {
			for d := range sum {
				sum[d] += sig[d]
			}
		}
		merged = append(merged, sum)
	}
	return merged, intervalOps * uint64(group)
}

// normalize converts a signature to a unit-sum frequency vector. An empty
// signature (an interval with no branches or entries) stays all-zero.
func normalize(sig perf.IntervalSignature) []float64 {
	v := make([]float64, perf.SigDims)
	total := 0.0
	for d, c := range sig {
		v[d] = float64(c)
		total += v[d]
	}
	if total > 0 {
		inv := 1 / total
		for d := range v {
			v[d] *= inv
		}
	}
	// Guard: k-medoids distance is finite on these vectors by construction,
	// but normalize is also the single place a profile-pass anomaly (an
	// overflowed bucket) would surface — keep it finite.
	for d := range v {
		if math.IsInf(v[d], 0) || math.IsNaN(v[d]) {
			v[d] = 0
		}
	}
	return v
}
