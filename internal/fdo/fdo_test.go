package fdo

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/benchmarks/gcc/cc"
)

func TestProgramValidate(t *testing.T) {
	p := ClassifierProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Program{Name: "x", Source: "int main() { return 0; }", Inputs: []Input{{Name: "only"}}}
	if err := bad.Validate(); !errors.Is(err, ErrStudy) {
		t.Errorf("one input: err = %v", err)
	}
	noCompile := &Program{
		Name: "y", Source: "int main() { return x; }",
		Inputs: []Input{{Name: "a"}, {Name: "b"}},
	}
	if err := noCompile.Validate(); !errors.Is(err, ErrStudy) {
		t.Errorf("broken source: err = %v", err)
	}
}

func TestAllStudyProgramsValid(t *testing.T) {
	for _, p := range StudyPrograms() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if len(p.Inputs) < 5 {
			t.Errorf("%s has only %d inputs", p.Name, len(p.Inputs))
		}
	}
}

func TestInputsChangeBehaviour(t *testing.T) {
	p := ClassifierProgram()
	unit, err := cc.CompileSource(p.Source, p.Level, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	outs := map[uint64]bool{}
	for _, in := range p.Inputs {
		res, err := cc.Run(unit, cc.VMOptions{Globals: in.Globals})
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		outs[res.Output] = true
	}
	if len(outs) < 3 {
		t.Errorf("inputs produce only %d distinct outputs", len(outs))
	}
}

func TestProfilesDifferAcrossInputs(t *testing.T) {
	p := ClassifierProgram()
	unit, err := cc.CompileSource(p.Source, p.Level, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	profHit, err := CollectProfile(unit, p.Inputs[0]) // mostly-hit
	if err != nil {
		t.Fatal(err)
	}
	profMiss, err := CollectProfile(unit, p.Inputs[2]) // mostly-miss
	if err != nil {
		t.Fatal(err)
	}
	// The hot if's taken ratio must differ strongly between the two.
	differs := false
	for id, bc := range profHit.Branches {
		other, ok := profMiss.Branches[id]
		if !ok || bc.Total == 0 || other.Total == 0 {
			continue
		}
		r1 := float64(bc.Taken) / float64(bc.Total)
		r2 := float64(other.Taken) / float64(other.Total)
		if r1 > r2+0.5 || r2 > r1+0.5 {
			differs = true
		}
	}
	if !differs {
		t.Error("expected at least one branch with strongly input-dependent bias")
	}
}

func TestTrainEvalPreservesSemanticsAndMeasures(t *testing.T) {
	p := ClassifierProgram()
	ev, err := TrainEval(p, "mostly-hit", "mostly-hit")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.OutputsMatch {
		t.Error("FDO changed outputs")
	}
	if ev.BaseCycles == 0 || ev.FDOCycles == 0 {
		t.Errorf("cycles not measured: %+v", ev)
	}
	// Training and evaluating on the same input is the best case for
	// FDO; it should not slow the program down meaningfully.
	if ev.Speedup < 0.97 {
		t.Errorf("self-trained FDO slowed the program: %v", ev.Speedup)
	}
}

func TestTrainEvalUnknownInput(t *testing.T) {
	p := ClassifierProgram()
	if _, err := TrainEval(p, "nope", "balanced"); !errors.Is(err, ErrStudy) {
		t.Errorf("err = %v", err)
	}
	if _, err := TrainEval(p, "balanced", "nope"); !errors.Is(err, ErrStudy) {
		t.Errorf("err = %v", err)
	}
}

func TestMismatchedTrainingCanMislead(t *testing.T) {
	// The paper's point: training on an input with opposite branch bias
	// should produce a worse (or at best equal) result on the evaluation
	// input than training on the evaluation input itself.
	p := ClassifierProgram()
	matched, err := TrainEval(p, "all-miss", "all-miss")
	if err != nil {
		t.Fatal(err)
	}
	mismatched, err := TrainEval(p, "all-hit", "all-miss")
	if err != nil {
		t.Fatal(err)
	}
	if mismatched.Speedup > matched.Speedup+1e-9 {
		t.Errorf("mismatched training (%v) should not beat matched training (%v)",
			mismatched.Speedup, matched.Speedup)
	}
}

func TestCrossValidation(t *testing.T) {
	p := ClassifierProgram()
	cv, err := CrossValidate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Folds) != len(p.Inputs) {
		t.Fatalf("folds = %d", len(cv.Folds))
	}
	for _, f := range cv.Folds {
		if !f.OutputsMatch {
			t.Errorf("fold %s changed outputs", f.Input)
		}
		if len(f.TrainedOn) != len(p.Inputs)-1 {
			t.Errorf("fold %s trained on %d inputs", f.Input, len(f.TrainedOn))
		}
	}
	if cv.GeoMeanSpeedup <= 0 || cv.SelfGeoMeanSpeedup <= 0 {
		t.Errorf("speedups = %v / %v", cv.GeoMeanSpeedup, cv.SelfGeoMeanSpeedup)
	}
	// The hidden-learning gap: self-trained evaluation must look at least
	// as good as honest held-out evaluation.
	if cv.SelfGeoMeanSpeedup+1e-9 < cv.GeoMeanSpeedup {
		t.Errorf("self-trained %v unexpectedly below held-out %v",
			cv.SelfGeoMeanSpeedup, cv.GeoMeanSpeedup)
	}
	text := FormatCrossValidation(cv)
	if !strings.Contains(text, "geomean held-out") || !strings.Contains(text, "classifier") {
		t.Errorf("format output:\n%s", text)
	}
}

func TestCrossValidationAllPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, p := range StudyPrograms() {
		cv, err := CrossValidate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		t.Logf("%s: held-out %.3fx, self-trained %.3fx",
			p.Name, cv.GeoMeanSpeedup, cv.SelfGeoMeanSpeedup)
	}
}

func TestCombinedProfileMergesRuns(t *testing.T) {
	p := LoopMixProgram()
	unit, err := cc.CompileSource(p.Source, p.Level, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	single, err := CollectProfile(unit, p.Inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	combined, err := CollectProfile(unit, p.Inputs...)
	if err != nil {
		t.Fatal(err)
	}
	var singleTotal, combinedTotal uint64
	for _, bc := range single.Branches {
		singleTotal += bc.Total
	}
	for _, bc := range combined.Branches {
		combinedTotal += bc.Total
	}
	if combinedTotal <= singleTotal {
		t.Errorf("combined profile (%d events) should exceed single (%d)", combinedTotal, singleTotal)
	}
}
