package fdo

import (
	"fmt"
	"sort"

	"repro/internal/benchmarks/gcc/cc"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perf"
)

// This file is the at-scale half of the FDO study: instead of the few
// hand-picked inputs each Program bundles, GenerateInputs mints as many
// deterministic inputs as the sweep asks for, ScaleCrossValidate clusters
// their behaviour and trains on the selected representative subset, and
// the held-out speedups quantify the paper's "hidden learning" concern
// with a training set chosen by the redundancy-reduction methodology
// rather than by hand.

// mix64 is the splitmix64 finalizer — the deterministic scrambler behind
// input generation (math/rand's global state is banned on the surface).
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// GenerateInputs mints n inputs for p from seed, deterministically: input
// i is named core.GeneratedName(seed, i) (the same provenance contract
// generated workloads carry) and sets every global the program's bundled
// inputs vary, drawn from the [min, max] range those inputs span. Same
// seed, same program, same inputs — always; and input i is the same
// whether generated as part of n=10 or n=1000.
func GenerateInputs(p *Program, seed int64, n int) []Input {
	// The varied globals and their observed ranges, in sorted key order so
	// generation never depends on map iteration.
	lo, hi := map[string]int64{}, map[string]int64{}
	var keys []string
	for _, in := range p.Inputs {
		for k, v := range in.Globals {
			if _, ok := lo[k]; !ok {
				lo[k], hi[k] = v, v
				keys = append(keys, k)
				continue
			}
			if v < lo[k] {
				lo[k] = v
			}
			if v > hi[k] {
				hi[k] = v
			}
		}
	}
	sort.Strings(keys)
	out := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		g := make(map[string]int64, len(keys))
		for ki, k := range keys {
			span := uint64(hi[k]-lo[k]) + 1
			h := mix64(uint64(seed)<<20 ^ uint64(i)<<8 ^ uint64(ki))
			g[k] = lo[k] + int64(h%span)
		}
		out = append(out, Input{Name: core.GeneratedName(seed, i), Globals: g})
	}
	return out
}

// InputPoint measures one input's behaviour on the base build and embeds
// it as a cluster point: top-down fractions, modeled cycles, and — when
// the feature space uses it — the method-coverage distribution.
func InputPoint(base *cc.Unit, in Input, features cluster.Features) (cluster.Point, error) {
	prof := perf.New()
	if _, err := cc.Run(base, cc.VMOptions{Globals: in.Globals, Prof: prof}); err != nil {
		return cluster.Point{}, fmt.Errorf("fdo: profiling input %s: %w", in.Name, err)
	}
	rpt := prof.Report()
	p := cluster.Point{
		Name:    in.Name,
		TopDown: [4]float64{rpt.TopDown.FrontEnd, rpt.TopDown.BackEnd, rpt.TopDown.BadSpec, rpt.TopDown.Retiring},
		Cycles:  rpt.Cycles,
	}
	if features != cluster.FeaturesTopDown {
		p.Coverage = rpt.Coverage
	}
	return p, nil
}

// ScaleStudy is the outcome of one program's at-scale hidden-learning
// experiment: FDO trained on the cluster-selected representative inputs,
// evaluated on every dropped input.
type ScaleStudy struct {
	Program string `json:"program"`
	// Inputs is the generated input count; Seed minted them.
	Inputs int   `json:"inputs"`
	Seed   int64 `json:"seed"`
	// TrainedOn are the representative inputs selected by clustering the
	// behaviour points (k-medoids, same machinery as the workload sweep).
	TrainedOn []string `json:"trained_on"`
	// CoverageLoss quantifies how well the training subset spans the
	// dropped inputs' behaviour.
	CoverageLoss cluster.CoverageLoss `json:"coverage_loss"`
	// SubsetGeoMean is the geomean held-out speedup of the build trained
	// on the representatives, over every dropped input — the honest
	// number a representative training set earns.
	SubsetGeoMean float64 `json:"subset_geomean_speedup"`
	// SelfGeoMean is the geomean speedup when each dropped input trains
	// its own build and evaluates on itself — the criticized methodology,
	// measured over the same inputs.
	SelfGeoMean float64 `json:"self_geomean_speedup"`
	// HiddenLearning is SelfGeoMean / SubsetGeoMean: how much of the
	// self-trained number is learning the evaluation input rather than
	// the program (1.0 = none).
	HiddenLearning float64 `json:"hidden_learning"`
	// Evaluated is the number of dropped (held-out) inputs measured.
	Evaluated int `json:"evaluated"`
}

// ScaleConfig sizes a ScaleCrossValidate run.
type ScaleConfig struct {
	// Seed mints the inputs; N is how many (>= 2).
	Seed int64
	N    int
	// K is the training-subset size (clamped to N-1 so at least one input
	// is held out).
	K int
	// Features and ClusterSeed configure the subset selection.
	Features    cluster.Features
	ClusterSeed int64
}

// ScaleCrossValidate runs the at-scale hidden-learning experiment on one
// program: generate cfg.N inputs, embed each input's base-build behaviour,
// select cfg.K representatives by k-medoids, train FDO on the
// representatives (combined profiling), and evaluate both that build and
// the criticized self-trained builds on every dropped input. Everything
// is deterministic in (program, cfg).
func ScaleCrossValidate(p *Program, cfg ScaleConfig) (ScaleStudy, error) {
	if cfg.N < 2 {
		return ScaleStudy{}, fmt.Errorf("%w: %s: need at least 2 generated inputs (got %d)", ErrStudy, p.Name, cfg.N)
	}
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.K > cfg.N-1 {
		cfg.K = cfg.N - 1
	}
	base, err := cc.CompileSource(p.Source, p.Level, nil, nil)
	if err != nil {
		return ScaleStudy{}, fmt.Errorf("%w: %s does not compile: %v", ErrStudy, p.Name, err)
	}
	inputs := GenerateInputs(p, cfg.Seed, cfg.N)
	byName := make(map[string]Input, len(inputs))
	fs := cluster.NewFeatureSpace(cfg.Features)
	for _, in := range inputs {
		byName[in.Name] = in
		pt, err := InputPoint(base, in, cfg.Features)
		if err != nil {
			return ScaleStudy{}, err
		}
		fs.AddPoint(pt)
	}
	sel, err := fs.Select(cluster.Options{K: cfg.K, Features: cfg.Features, Seed: cfg.ClusterSeed})
	if err != nil {
		return ScaleStudy{}, fmt.Errorf("fdo: %s: selecting training subset: %w", p.Name, err)
	}

	train := make([]Input, 0, len(sel.Representatives))
	isTrain := map[string]bool{}
	for _, name := range sel.Representatives {
		train = append(train, byName[name])
		isTrain[name] = true
	}
	profile, err := CollectProfile(base, train...)
	if err != nil {
		return ScaleStudy{}, err
	}
	subsetUnit, err := buildFDO(p, profile)
	if err != nil {
		return ScaleStudy{}, err
	}

	st := ScaleStudy{
		Program:      p.Name,
		Inputs:       cfg.N,
		Seed:         cfg.Seed,
		TrainedOn:    sel.Representatives,
		CoverageLoss: sel.Loss,
	}
	subsetLogSum, selfLogSum := 0.0, 0.0
	for _, in := range inputs {
		if isTrain[in.Name] {
			continue
		}
		ev, err := evaluate(p, base, subsetUnit, sel.Representatives, in)
		if err != nil {
			return ScaleStudy{}, err
		}
		subsetLogSum += logOf(ev.Speedup)

		selfProfile, err := CollectProfile(base, in)
		if err != nil {
			return ScaleStudy{}, err
		}
		selfUnit, err := buildFDO(p, selfProfile)
		if err != nil {
			return ScaleStudy{}, err
		}
		selfEv, err := evaluate(p, base, selfUnit, []string{in.Name}, in)
		if err != nil {
			return ScaleStudy{}, err
		}
		selfLogSum += logOf(selfEv.Speedup)
		st.Evaluated++
	}
	if st.Evaluated > 0 {
		n := float64(st.Evaluated)
		st.SubsetGeoMean = expOf(subsetLogSum / n)
		st.SelfGeoMean = expOf(selfLogSum / n)
		if st.SubsetGeoMean > 0 {
			st.HiddenLearning = st.SelfGeoMean / st.SubsetGeoMean
		}
	}
	return st, nil
}

// FormatScaleStudy renders an at-scale study result.
func FormatScaleStudy(st ScaleStudy) string {
	out := fmt.Sprintf("FDO at scale: %s (%d generated inputs, seed %d)\n", st.Program, st.Inputs, st.Seed)
	out += fmt.Sprintf("  trained on %d representatives: %v\n", len(st.TrainedOn), st.TrainedOn)
	out += fmt.Sprintf("  training-set coverage loss: dropped=%d max=%.4f mean=%.4f\n",
		st.CoverageLoss.Dropped, st.CoverageLoss.MaxDistance, st.CoverageLoss.MeanDistance)
	out += fmt.Sprintf("  geomean held-out speedup (subset-trained): %.3fx over %d inputs\n", st.SubsetGeoMean, st.Evaluated)
	out += fmt.Sprintf("  geomean self-trained speedup (criticized): %.3fx\n", st.SelfGeoMean)
	out += fmt.Sprintf("  hidden learning: %.3fx\n", st.HiddenLearning)
	return out
}
