// Package fdo implements the Feedback-Directed Optimization pipeline whose
// proper evaluation motivates the paper (Sections I, II and VII): profile
// collection on the mini-C VM, profile-guided recompilation (hot-call
// inlining and branch layout in internal/benchmarks/gcc/cc), and — the
// paper's methodological contribution — evaluation procedures that expose
// the difference between the criticized single-train/single-ref practice
// and a proper cross-validation over many workloads. Combined profiling
// (merging feedback from multiple training runs, Berube's methodology) is
// included as well.
package fdo

import (
	"errors"
	"fmt"

	"repro/internal/benchmarks/gcc/cc"
	"repro/internal/perf"
)

// Input is one named workload of an FDO study program: a set of global
// overrides injected before execution.
type Input struct {
	Name    string
	Globals map[string]int64
}

// Program is a study subject: mini-C source plus a family of inputs.
type Program struct {
	Name   string
	Source string
	Inputs []Input
	// Level is the optimization level for both baseline and FDO builds.
	Level cc.OptLevel
}

// ErrStudy reports an invalid study configuration.
var ErrStudy = errors.New("fdo: invalid study")

// Validate checks the program compiles and has at least two inputs.
func (p *Program) Validate() error {
	if len(p.Inputs) < 2 {
		return fmt.Errorf("%w: %s needs at least two inputs for cross validation", ErrStudy, p.Name)
	}
	if _, err := cc.CompileSource(p.Source, p.Level, nil, nil); err != nil {
		return fmt.Errorf("%w: %s does not compile: %v", ErrStudy, p.Name, err)
	}
	return nil
}

// Cycles measures the modeled cycles of unit on the given input.
func Cycles(unit *cc.Unit, in Input) (uint64, error) {
	p := perf.New()
	if _, err := cc.Run(unit, cc.VMOptions{Globals: in.Globals, Prof: p}); err != nil {
		return 0, fmt.Errorf("fdo: input %s: %w", in.Name, err)
	}
	return p.Report().Cycles, nil
}

// CollectProfile runs the instrumented training execution on the inputs and
// returns the merged edge profile.
func CollectProfile(unit *cc.Unit, inputs ...Input) (*cc.Profile, error) {
	merged := cc.NewProfile()
	for _, in := range inputs {
		profile := cc.NewProfile()
		if _, err := cc.Run(unit, cc.VMOptions{Globals: in.Globals, Collect: profile}); err != nil {
			return nil, fmt.Errorf("fdo: training on %s: %w", in.Name, err)
		}
		merged.Merge(profile)
	}
	return merged, nil
}

// buildFDO compiles the program with the given training profile.
func buildFDO(p *Program, profile *cc.Profile) (*cc.Unit, error) {
	return cc.CompileSource(p.Source, p.Level, profile, nil)
}

// Evaluation is one (training set, evaluation input) outcome.
type Evaluation struct {
	TrainedOn []string
	Input     string
	// BaseCycles and FDOCycles are the modeled costs of the two builds.
	BaseCycles, FDOCycles uint64
	// Speedup is BaseCycles / FDOCycles (> 1 means FDO helped).
	Speedup float64
	// OutputsMatch confirms FDO preserved semantics.
	OutputsMatch bool
}

// evaluate measures base vs FDO builds on one input.
func evaluate(p *Program, base, fdoUnit *cc.Unit, trainNames []string, in Input) (Evaluation, error) {
	baseRes, err := cc.Run(base, cc.VMOptions{Globals: in.Globals})
	if err != nil {
		return Evaluation{}, fmt.Errorf("fdo: base run on %s: %w", in.Name, err)
	}
	fdoRes, err := cc.Run(fdoUnit, cc.VMOptions{Globals: in.Globals})
	if err != nil {
		return Evaluation{}, fmt.Errorf("fdo: optimized run on %s: %w", in.Name, err)
	}
	baseCycles, err := Cycles(base, in)
	if err != nil {
		return Evaluation{}, err
	}
	fdoCycles, err := Cycles(fdoUnit, in)
	if err != nil {
		return Evaluation{}, err
	}
	ev := Evaluation{
		TrainedOn:    trainNames,
		Input:        in.Name,
		BaseCycles:   baseCycles,
		FDOCycles:    fdoCycles,
		OutputsMatch: baseRes.Return == fdoRes.Return && baseRes.Output == fdoRes.Output,
	}
	if fdoCycles > 0 {
		ev.Speedup = float64(baseCycles) / float64(fdoCycles)
	}
	if !ev.OutputsMatch {
		return ev, fmt.Errorf("fdo: FDO build changed program output on %s", in.Name)
	}
	return ev, nil
}

// TrainEval is the methodology the paper criticizes when train == eval (or
// when the pair is fixed): profile on one input, measure on another.
func TrainEval(p *Program, trainInput, evalInput string) (Evaluation, error) {
	if err := p.Validate(); err != nil {
		return Evaluation{}, err
	}
	train, err := findInput(p, trainInput)
	if err != nil {
		return Evaluation{}, err
	}
	eval, err := findInput(p, evalInput)
	if err != nil {
		return Evaluation{}, err
	}
	base, err := cc.CompileSource(p.Source, p.Level, nil, nil)
	if err != nil {
		return Evaluation{}, err
	}
	profile, err := CollectProfile(base, train)
	if err != nil {
		return Evaluation{}, err
	}
	fdoUnit, err := buildFDO(p, profile)
	if err != nil {
		return Evaluation{}, err
	}
	return evaluate(p, base, fdoUnit, []string{train.Name}, eval)
}

// CrossValidation is the paper's recommended methodology: leave-one-out
// over all inputs.
type CrossValidation struct {
	Program string
	// Folds holds one evaluation per input, trained on all others.
	Folds []Evaluation
	// GeoMeanSpeedup summarizes the held-out speedups.
	GeoMeanSpeedup float64
	// SelfGeoMeanSpeedup is the (inflated) train-on-self number for
	// comparison: each input both trains and evaluates.
	SelfGeoMeanSpeedup float64
}

// CrossValidate runs leave-one-out FDO evaluation plus the self-trained
// comparison, exposing the "hidden learning" gap.
func CrossValidate(p *Program) (CrossValidation, error) {
	if err := p.Validate(); err != nil {
		return CrossValidation{}, err
	}
	base, err := cc.CompileSource(p.Source, p.Level, nil, nil)
	if err != nil {
		return CrossValidation{}, err
	}
	cv := CrossValidation{Program: p.Name}
	logSum, selfLogSum := 0.0, 0.0
	for i, eval := range p.Inputs {
		// Held-out: train on everything except input i (combined
		// profiling across the training runs).
		var trainSet []Input
		var trainNames []string
		for j, in := range p.Inputs {
			if j != i {
				trainSet = append(trainSet, in)
				trainNames = append(trainNames, in.Name)
			}
		}
		profile, err := CollectProfile(base, trainSet...)
		if err != nil {
			return CrossValidation{}, err
		}
		fdoUnit, err := buildFDO(p, profile)
		if err != nil {
			return CrossValidation{}, err
		}
		ev, err := evaluate(p, base, fdoUnit, trainNames, eval)
		if err != nil {
			return CrossValidation{}, err
		}
		cv.Folds = append(cv.Folds, ev)
		logSum += logOf(ev.Speedup)

		// Self-trained: the criticized practice.
		selfProfile, err := CollectProfile(base, eval)
		if err != nil {
			return CrossValidation{}, err
		}
		selfUnit, err := buildFDO(p, selfProfile)
		if err != nil {
			return CrossValidation{}, err
		}
		selfEv, err := evaluate(p, base, selfUnit, []string{eval.Name}, eval)
		if err != nil {
			return CrossValidation{}, err
		}
		selfLogSum += logOf(selfEv.Speedup)
	}
	n := float64(len(p.Inputs))
	cv.GeoMeanSpeedup = expOf(logSum / n)
	cv.SelfGeoMeanSpeedup = expOf(selfLogSum / n)
	return cv, nil
}

func findInput(p *Program, name string) (Input, error) {
	for _, in := range p.Inputs {
		if in.Name == name {
			return in, nil
		}
	}
	return Input{}, fmt.Errorf("%w: %s has no input %q", ErrStudy, p.Name, name)
}
