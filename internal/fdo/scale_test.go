package fdo

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

// TestGenerateInputsDeterministicAndPrefixStable pins the generated
// inputs to core.Generator's contract: same (program, seed) mints the
// same inputs, input i is independent of n, and every name carries its
// provenance.
func TestGenerateInputsDeterministicAndPrefixStable(t *testing.T) {
	p := ClassifierProgram()
	a := GenerateInputs(p, 42, 10)
	b := GenerateInputs(p, 42, 10)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different inputs")
	}
	long := GenerateInputs(p, 42, 25)
	if !reflect.DeepEqual(a, long[:10]) {
		t.Fatal("input i depends on n: prefix stability violated")
	}
	other := GenerateInputs(p, 43, 10)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds generated identical inputs")
	}
	for i, in := range a {
		if in.Name != core.GeneratedName(42, i) {
			t.Errorf("input %d named %q, want %q", i, in.Name, core.GeneratedName(42, i))
		}
	}
}

// TestGenerateInputsStayInObservedRanges proves generated globals stay
// inside the [min, max] span the bundled inputs establish, and that
// every varied global is set.
func TestGenerateInputsStayInObservedRanges(t *testing.T) {
	p := ClassifierProgram()
	lo, hi := map[string]int64{}, map[string]int64{}
	for _, in := range p.Inputs {
		for k, v := range in.Globals {
			if cur, ok := lo[k]; !ok || v < cur {
				lo[k] = v
			}
			if cur, ok := hi[k]; !ok || v > cur {
				hi[k] = v
			}
		}
	}
	for _, in := range GenerateInputs(p, 7, 40) {
		if len(in.Globals) != len(lo) {
			t.Fatalf("%s sets %d globals, want %d", in.Name, len(in.Globals), len(lo))
		}
		for k, v := range in.Globals {
			if v < lo[k] || v > hi[k] {
				t.Errorf("%s: %s = %d outside observed [%d, %d]", in.Name, k, v, lo[k], hi[k])
			}
		}
	}
}

// TestScaleCrossValidate runs the at-scale study end to end on one
// program and pins its invariants: the training subset has K inputs, the
// held-out count is N minus K, the speedups are positive, and the whole
// study is deterministic in its config.
func TestScaleCrossValidate(t *testing.T) {
	p := ClassifierProgram()
	cfg := ScaleConfig{Seed: 5, N: 4, K: 2, Features: cluster.FeaturesCombined}
	st, err := ScaleCrossValidate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.TrainedOn) != 2 {
		t.Errorf("trained on %d inputs, want 2", len(st.TrainedOn))
	}
	if st.Evaluated != 2 {
		t.Errorf("evaluated %d held-out inputs, want 2", st.Evaluated)
	}
	if st.SubsetGeoMean <= 0 || st.SelfGeoMean <= 0 || st.HiddenLearning <= 0 {
		t.Errorf("non-positive speedups: %+v", st)
	}
	if st.CoverageLoss.Dropped != 2 {
		t.Errorf("coverage loss dropped = %d, want 2", st.CoverageLoss.Dropped)
	}
	again, err := ScaleCrossValidate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, again) {
		t.Errorf("study is not deterministic:\nfirst:  %+v\nsecond: %+v", st, again)
	}
}

func TestScaleCrossValidateClampsAndRejects(t *testing.T) {
	p := ClassifierProgram()
	if _, err := ScaleCrossValidate(p, ScaleConfig{Seed: 1, N: 1, K: 1}); err == nil {
		t.Error("N=1 accepted; want error (nothing to hold out)")
	}
	// K >= N clamps to N-1, leaving one held-out input.
	st, err := ScaleCrossValidate(p, ScaleConfig{Seed: 1, N: 3, K: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.TrainedOn) != 2 || st.Evaluated != 1 {
		t.Errorf("K clamp: trained on %d, evaluated %d; want 2 and 1", len(st.TrainedOn), st.Evaluated)
	}
}
