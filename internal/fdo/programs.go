package fdo

import (
	"fmt"
	"math"

	"repro/internal/benchmarks/gcc/cc"
)

func logOf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log(x)
}

func expOf(x float64) float64 { return math.Exp(x) }

// ClassifierProgram is an input-sensitive study subject: its hot branch's
// bias is controlled by the input threshold, so a profile collected on one
// input can mislead branch layout on another — the paper's central concern
// in miniature.
func ClassifierProgram() *Program {
	src := `
int threshold = 50;
int items = 3000;
int acc = 0;
int weigh(int x) { return ((x * 3 + 7) ^ (x >> 2)) % 1009; }
int main() {
  for (int i = 0; i < items; i++) {
    int v = (i * 37 + 11) % 100;
    if (v < threshold) {
      acc += weigh(v);
    } else {
      acc -= 1;
    }
  }
  print(acc);
  return acc % 251;
}
`
	mk := func(name string, threshold int64) Input {
		return Input{Name: name, Globals: map[string]int64{"threshold": threshold}}
	}
	return &Program{
		Name:   "classifier",
		Source: src,
		Level:  cc.O2,
		Inputs: []Input{
			mk("mostly-hit", 90),
			mk("balanced", 50),
			mk("mostly-miss", 10),
			mk("all-hit", 100),
			mk("all-miss", 0),
		},
	}
}

// FilterChainProgram has several branches whose biases move together with
// the input mix, plus an inlinable hot helper — exercising both FDO
// decisions (layout and hot-call inlining).
func FilterChainProgram() *Program {
	src := `
int mode = 0;
int rounds = 900;
int acc = 0;
int small(int x) { return x + 1; }
int med(int x) { return x * x % 97 + (x >> 1); }
int main() {
  for (int r = 0; r < rounds; r++) {
    int v = (r * 13 + mode * 7) % 64;
    if (mode == 0) {
      acc += small(v);
    } else {
      acc += med(v);
    }
    if (v % 4 == mode % 4) {
      acc += small(acc % 50);
    } else {
      acc -= 2;
    }
    if (acc > 100000) {
      acc = acc % 1000;
    }
  }
  print(acc);
  return acc % 251;
}
`
	mk := func(name string, mode, rounds int64) Input {
		return Input{Name: name, Globals: map[string]int64{"mode": mode, "rounds": rounds}}
	}
	return &Program{
		Name:   "filterchain",
		Source: src,
		Level:  cc.O2,
		Inputs: []Input{
			mk("mode0-short", 0, 500),
			mk("mode0-long", 0, 1500),
			mk("mode1-short", 1, 500),
			mk("mode1-long", 1, 1500),
			mk("mode2", 2, 900),
		},
	}
}

// LoopMixProgram varies which loop nest dominates with the input, shifting
// the hot methods (the method-coverage story of Figure 2 in FDO form).
func LoopMixProgram() *Program {
	src := `
int na = 400;
int nb = 400;
int acc = 0;
int workA(int x) { return (x * 31 + 3) % 1009; }
int workB(int x) { return (x * 131 + 11) % 65599; }
int main() {
  for (int i = 0; i < na; i++) {
    acc += workA(i % 128);
    if (acc % 2 == 0) { acc += 1; } else { acc -= 1; }
  }
  for (int j = 0; j < nb; j++) {
    acc += workB(j % 256);
    if (acc % 8 < 4) { acc += 2; } else { acc -= 2; }
  }
  print(acc);
  return acc % 251;
}
`
	mk := func(name string, na, nb int64) Input {
		return Input{Name: name, Globals: map[string]int64{"na": na, "nb": nb}}
	}
	return &Program{
		Name:   "loopmix",
		Source: src,
		Level:  cc.O2,
		Inputs: []Input{
			mk("a-heavy", 2000, 100),
			mk("b-heavy", 100, 2000),
			mk("even", 1000, 1000),
			mk("a-only", 2000, 0),
			mk("b-only", 0, 2000),
		},
	}
}

// StudyPrograms returns the bundled FDO study subjects.
func StudyPrograms() []*Program {
	return []*Program{ClassifierProgram(), FilterChainProgram(), LoopMixProgram()}
}

// FormatCrossValidation renders a cross-validation result.
func FormatCrossValidation(cv CrossValidation) string {
	out := fmt.Sprintf("FDO cross-validation: %s\n", cv.Program)
	out += fmt.Sprintf("%-14s %-40s %12s %12s %9s\n", "eval input", "trained on", "base cycles", "fdo cycles", "speedup")
	for _, f := range cv.Folds {
		trained := "held-out (all others)"
		if len(f.TrainedOn) == 1 {
			trained = f.TrainedOn[0]
		}
		out += fmt.Sprintf("%-14s %-40s %12d %12d %8.3fx\n",
			f.Input, trained, f.BaseCycles, f.FDOCycles, f.Speedup)
	}
	out += fmt.Sprintf("geomean held-out speedup: %.3fx\n", cv.GeoMeanSpeedup)
	out += fmt.Sprintf("geomean self-trained speedup (the criticized methodology): %.3fx\n", cv.SelfGeoMeanSpeedup)
	return out
}
