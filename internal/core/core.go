// Package core defines the vocabulary of the reproduction: a Benchmark is a
// program under study, a Workload is one input to it, and a Result is one
// profiled execution. The Alberta contribution — additional workloads and
// generators beyond SPEC's train/refrate pair — is expressed through the
// Kind taxonomy and the Generator interface.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/perf"
)

// Kind classifies a workload by provenance, mirroring the paper's taxonomy.
type Kind int

const (
	// KindTest is SPEC's smoke-test input: too short for measurement.
	KindTest Kind = iota
	// KindTrain is SPEC's FDO-training input.
	KindTrain
	// KindRefrate is SPEC's reference (measurement) input.
	KindRefrate
	// KindAlberta is an additional workload from the Alberta set.
	KindAlberta
)

// String returns the SPEC-style name of the kind.
func (k Kind) String() string {
	switch k {
	case KindTest:
		return "test"
	case KindTrain:
		return "train"
	case KindRefrate:
		return "refrate"
	case KindAlberta:
		return "alberta"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Workload is one input to a benchmark. Concrete workload types live in the
// benchmark packages; the harness only needs identity and provenance.
type Workload interface {
	// WorkloadName identifies the workload uniquely within its benchmark.
	WorkloadName() string
	// WorkloadKind reports the workload's provenance.
	WorkloadKind() Kind
}

// Meta is a ready-made Workload implementation for embedding in concrete
// workload types.
type Meta struct {
	Name string
	Kind Kind
}

// WorkloadName implements Workload.
func (m Meta) WorkloadName() string { return m.Name }

// WorkloadKind implements Workload.
func (m Meta) WorkloadKind() Kind { return m.Kind }

// Result is one profiled execution of a benchmark with a workload.
type Result struct {
	Benchmark string
	Workload  string
	Kind      Kind
	// Checksum validates the computation's output: identical workloads
	// must produce identical checksums across runs (the model is
	// deterministic), and tests use it to detect broken implementations.
	Checksum uint64
	// Report carries the modeled hardware observation.
	Report perf.Report
}

// Benchmark is a program under study together with its workload inventory.
// Implementations must be deterministic: the same workload always produces
// the same checksum and the same modeled events.
type Benchmark interface {
	// Name returns the SPEC-style identifier, e.g. "505.mcf_r".
	Name() string
	// Area returns the application area, e.g. "Route planning".
	Area() string
	// Workloads returns the full inventory: SPEC-style train and refrate
	// workloads plus any Alberta workloads. Order is stable.
	Workloads() ([]Workload, error)
	// Run executes the benchmark on w, reporting events to p.
	Run(w Workload, p *perf.Profiler) (Result, error)
}

// Generator is implemented by benchmarks that can procedurally create new
// workloads (the paper's generator scripts and programs).
//
// The generated-workload contract, which sweeps and the service's cell
// cache rely on:
//
//   - Determinism in seed: GenerateWorkloads(seed, n) must return the same
//     n workloads — bit-identical inputs and, when executed, bit-identical
//     checksums and profiler event streams — on every call, every process,
//     every platform.
//   - Prefix stability: GenerateWorkloads(seed, n)[i] must equal
//     GenerateWorkloads(seed, m)[i] for every i < min(n, m), so a
//     workload's identity does not depend on the sweep size that first
//     produced it.
//   - Provenance naming: workload i must be named GeneratedName(seed, i)
//     and carry KindAlberta, so the name alone records how to regenerate
//     the workload (ResolveWorkload does exactly that). Names of inventory
//     workloads never collide with the generated namespace.
//
// internal/benchmarks' generator tests pin all three properties for every
// generator-capable benchmark in the suite.
type Generator interface {
	// GenerateWorkloads creates n fresh Alberta-kind workloads from seed.
	GenerateWorkloads(seed int64, n int) ([]Workload, error)
}

// GeneratedName is the canonical name of the i-th workload generated from
// seed: "gen.s<seed>.<i>". The name is the workload's provenance — parsing
// it back recovers the (seed, index) pair that regenerates the workload.
func GeneratedName(seed int64, index int) string {
	return fmt.Sprintf("gen.s%d.%d", seed, index)
}

// ParseGeneratedName recovers the provenance of a GeneratedName. ok is
// false for any name outside the generated namespace.
func ParseGeneratedName(name string) (seed int64, index int, ok bool) {
	rest, found := strings.CutPrefix(name, "gen.s")
	if !found {
		return 0, 0, false
	}
	dot := strings.LastIndexByte(rest, '.')
	if dot <= 0 || dot == len(rest)-1 {
		return 0, 0, false
	}
	seed, err := strconv.ParseInt(rest[:dot], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	index, err = strconv.Atoi(rest[dot+1:])
	if err != nil || index < 0 {
		return 0, 0, false
	}
	// Round-trip exactness rejects aliases like "gen.s01.2".
	if GeneratedName(seed, index) != name {
		return 0, 0, false
	}
	return seed, index, true
}

// ResolveWorkload finds a workload by name: the benchmark's inventory
// first, then — when the name carries generated provenance and the
// benchmark implements Generator — by regenerating it from the recorded
// seed and index. This is how a sweep cell can be executed anywhere (a
// remote worker, a later process) from nothing but its benchmark and
// workload names.
func ResolveWorkload(b Benchmark, name string) (Workload, error) {
	w, err := FindWorkload(b, name)
	if err == nil {
		return w, nil
	}
	seed, index, ok := ParseGeneratedName(name)
	if !ok {
		return nil, err
	}
	gen, isGen := b.(Generator)
	if !isGen {
		return nil, fmt.Errorf("%w: %s/%s (benchmark cannot generate workloads)", ErrNoWorkload, b.Name(), name)
	}
	ws, gerr := gen.GenerateWorkloads(seed, index+1)
	if gerr != nil {
		return nil, fmt.Errorf("core: regenerating %s/%s: %w", b.Name(), name, gerr)
	}
	if len(ws) <= index || ws[index].WorkloadName() != name {
		return nil, fmt.Errorf("core: %s generator violated the provenance contract for %s", b.Name(), name)
	}
	return ws[index], nil
}

// PreparedWorkload is a fully constructed benchmark input: the result of
// the uninstrumented prepare phase, ready to be executed — and re-executed
// — under measurement. Implementations hold two kinds of state:
//
//   - the prepared input proper (parsed documents, generated payloads,
//     geometry, topologies), which is immutable after Prepare; and
//   - mutable scratch (lattice arrays, solver state, buffers), which
//     Execute resets in place at the start of every call instead of
//     reallocating.
//
// Execute must be repeatable: every call on the same handle must produce a
// Result and a profiler event stream identical to Benchmark.Run on the
// same workload with a fresh profiler. The harness relies on this to
// prepare once per (benchmark, workload) cell and reuse the handle across
// all repetitions.
//
// A PreparedWorkload is not safe for concurrent Execute calls; the harness
// runs at most one repetition of a cell at a time.
type PreparedWorkload interface {
	// Execute runs the measured phase, reporting events to p (which may be
	// nil for an unprofiled run, like Benchmark.Run).
	Execute(p *perf.Profiler) (Result, error)
}

// Preparer is implemented by benchmarks whose Run splits into an
// uninstrumented prepare phase and a measured execute phase. Prepare does
// every piece of input construction that does not belong under measurement
// — parsing, payload generation, master encodes — and must not receive or
// touch a *perf.Profiler (albertalint's no-profiler-in-prepare rule
// enforces this statically); profiler interaction, including SetFootprint,
// belongs in Execute.
//
// Benchmarks implementing Preparer must keep Run equivalent to
// Prepare(w).Execute(p): the conventional implementation is exactly that
// delegation, which makes the equivalence structural.
type Preparer interface {
	Prepare(w Workload) (PreparedWorkload, error)
}

// PrepareOrRun returns a PreparedWorkload for b and w: b's own Prepare
// when it implements Preparer, otherwise a fallback handle whose Execute
// calls b.Run (paying input construction on every call).
func PrepareOrRun(b Benchmark, w Workload) (PreparedWorkload, error) {
	if p, ok := b.(Preparer); ok {
		return p.Prepare(w)
	}
	return runFallback{b: b, w: w}, nil
}

// runFallback adapts a non-Preparer benchmark to the PreparedWorkload
// interface without splitting its Run.
type runFallback struct {
	b Benchmark
	w Workload
}

// Execute implements PreparedWorkload by running the benchmark cold.
func (f runFallback) Execute(p *perf.Profiler) (Result, error) { return f.b.Run(f.w, p) }

// ErrUnknownWorkload is returned by Run when handed a workload the
// benchmark does not recognize.
var ErrUnknownWorkload = errors.New("core: unknown workload type for benchmark")

// ErrNoWorkload is returned when a named workload cannot be found.
var ErrNoWorkload = errors.New("core: no such workload")

// FindWorkload returns the workload with the given name from b's inventory.
func FindWorkload(b Benchmark, name string) (Workload, error) {
	ws, err := b.Workloads()
	if err != nil {
		return nil, err
	}
	for _, w := range ws {
		if w.WorkloadName() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("%w: %s/%s", ErrNoWorkload, b.Name(), name)
}

// WorkloadsOfKind filters b's inventory by kind.
func WorkloadsOfKind(b Benchmark, kind Kind) ([]Workload, error) {
	ws, err := b.Workloads()
	if err != nil {
		return nil, err
	}
	var out []Workload
	for _, w := range ws {
		if w.WorkloadKind() == kind {
			out = append(out, w)
		}
	}
	return out, nil
}

// MeasurementWorkloads returns every workload suitable for measurement:
// train, refrate and Alberta kinds (test inputs are excluded, as in the
// paper).
func MeasurementWorkloads(b Benchmark) ([]Workload, error) {
	ws, err := b.Workloads()
	if err != nil {
		return nil, err
	}
	var out []Workload
	for _, w := range ws {
		if w.WorkloadKind() != KindTest {
			out = append(out, w)
		}
	}
	return out, nil
}

// Suite is an ordered collection of benchmarks.
type Suite struct {
	byName map[string]Benchmark
	order  []string
}

// NewSuite builds a suite from benchmarks; duplicate names are an error.
func NewSuite(benchmarks ...Benchmark) (*Suite, error) {
	s := &Suite{byName: make(map[string]Benchmark, len(benchmarks))}
	for _, b := range benchmarks {
		if _, dup := s.byName[b.Name()]; dup {
			return nil, fmt.Errorf("core: duplicate benchmark %q", b.Name())
		}
		s.byName[b.Name()] = b
		s.order = append(s.order, b.Name())
	}
	sort.Strings(s.order)
	return s, nil
}

// Benchmarks returns the suite members in name order.
func (s *Suite) Benchmarks() []Benchmark {
	out := make([]Benchmark, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.byName[n])
	}
	return out
}

// Lookup returns the benchmark with the given name.
func (s *Suite) Lookup(name string) (Benchmark, bool) {
	b, ok := s.byName[name]
	return b, ok
}

// Len returns the number of benchmarks in the suite.
func (s *Suite) Len() int { return len(s.order) }

// Checksum is a small helper for benchmarks to fold output bytes/values
// into a stable checksum (FNV-1a).
type Checksum uint64

// NewChecksum returns the FNV-1a offset basis.
func NewChecksum() Checksum { return 14695981039346656037 }

// AddUint64 folds v into the checksum.
func (c Checksum) AddUint64(v uint64) Checksum {
	for i := 0; i < 8; i++ {
		c ^= Checksum(v & 0xff)
		c *= 1099511628211
		v >>= 8
	}
	return c
}

// AddBytes folds b into the checksum.
func (c Checksum) AddBytes(b []byte) Checksum {
	for _, x := range b {
		c ^= Checksum(x)
		c *= 1099511628211
	}
	return c
}

// AddString folds s into the checksum.
func (c Checksum) AddString(s string) Checksum {
	for i := 0; i < len(s); i++ {
		c ^= Checksum(s[i])
		c *= 1099511628211
	}
	return c
}

// AddFloat folds the bit pattern of f into the checksum after rounding to
// 1e-9 to stay stable across compilation modes.
func (c Checksum) AddFloat(f float64) Checksum {
	scaled := int64(f * 1e9)
	return c.AddUint64(uint64(scaled))
}

// Value returns the checksum value.
func (c Checksum) Value() uint64 { return uint64(c) }

// FileRenderer is implemented by benchmarks whose workloads have a natural
// on-disk representation — the form in which the Alberta Workloads website
// distributes them (NED files, SGF games, EPD position lists, PDB
// structures, XML documents with stylesheets, C compilation units, puzzle
// seed files). RenderWorkload returns file name → content.
type FileRenderer interface {
	RenderWorkload(w Workload) (map[string][]byte, error)
}
