package core

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/perf"
)

type fakeBench struct {
	name string
	ws   []Workload
}

func (f *fakeBench) Name() string { return f.name }
func (f *fakeBench) Area() string { return "testing" }
func (f *fakeBench) Workloads() ([]Workload, error) {
	return f.ws, nil
}
func (f *fakeBench) Run(w Workload, p *perf.Profiler) (Result, error) {
	p.Do("fake", func() { p.Ops(10) })
	return Result{Benchmark: f.name, Workload: w.WorkloadName(), Kind: w.WorkloadKind()}, nil
}

func newFake(name string) *fakeBench {
	return &fakeBench{name: name, ws: []Workload{
		Meta{Name: "test", Kind: KindTest},
		Meta{Name: "train", Kind: KindTrain},
		Meta{Name: "refrate", Kind: KindRefrate},
		Meta{Name: "alberta.1", Kind: KindAlberta},
		Meta{Name: "alberta.2", Kind: KindAlberta},
	}}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindTest: "test", KindTrain: "train", KindRefrate: "refrate", KindAlberta: "alberta",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind formatting = %q", Kind(99).String())
	}
}

func TestFindWorkload(t *testing.T) {
	b := newFake("x")
	w, err := FindWorkload(b, "alberta.2")
	if err != nil {
		t.Fatal(err)
	}
	if w.WorkloadName() != "alberta.2" || w.WorkloadKind() != KindAlberta {
		t.Errorf("got %v/%v", w.WorkloadName(), w.WorkloadKind())
	}
	if _, err := FindWorkload(b, "nope"); !errors.Is(err, ErrNoWorkload) {
		t.Errorf("err = %v, want ErrNoWorkload", err)
	}
}

func TestWorkloadsOfKind(t *testing.T) {
	b := newFake("x")
	alb, err := WorkloadsOfKind(b, KindAlberta)
	if err != nil {
		t.Fatal(err)
	}
	if len(alb) != 2 {
		t.Errorf("alberta workloads = %d, want 2", len(alb))
	}
}

func TestMeasurementWorkloadsExcludesTest(t *testing.T) {
	b := newFake("x")
	ms, err := MeasurementWorkloads(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Errorf("measurement workloads = %d, want 4", len(ms))
	}
	for _, w := range ms {
		if w.WorkloadKind() == KindTest {
			t.Errorf("test workload %q leaked into measurement set", w.WorkloadName())
		}
	}
}

func TestSuiteOrderingAndLookup(t *testing.T) {
	s, err := NewSuite(newFake("b.two"), newFake("a.one"), newFake("c.three"))
	if err != nil {
		t.Fatal(err)
	}
	bs := s.Benchmarks()
	if len(bs) != 3 || s.Len() != 3 {
		t.Fatalf("len = %d/%d", len(bs), s.Len())
	}
	if bs[0].Name() != "a.one" || bs[2].Name() != "c.three" {
		t.Errorf("order = %v, %v, %v", bs[0].Name(), bs[1].Name(), bs[2].Name())
	}
	if _, ok := s.Lookup("b.two"); !ok {
		t.Error("Lookup(b.two) failed")
	}
	if _, ok := s.Lookup("zzz"); ok {
		t.Error("Lookup(zzz) should fail")
	}
}

func TestSuiteRejectsDuplicates(t *testing.T) {
	if _, err := NewSuite(newFake("dup"), newFake("dup")); err == nil {
		t.Error("duplicate benchmark names should be rejected")
	}
}

func TestChecksumDeterminism(t *testing.T) {
	a := NewChecksum().AddString("hello").AddUint64(42).AddFloat(3.14)
	b := NewChecksum().AddString("hello").AddUint64(42).AddFloat(3.14)
	if a != b {
		t.Errorf("checksums differ: %x vs %x", a, b)
	}
}

func TestChecksumSensitivity(t *testing.T) {
	base := NewChecksum().AddString("hello").Value()
	if NewChecksum().AddString("hellp").Value() == base {
		t.Error("checksum should change with content")
	}
	if NewChecksum().AddBytes([]byte("hello")).Value() != base {
		t.Error("AddBytes and AddString of the same content should agree")
	}
}

func TestChecksumOrderSensitivity(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		x := NewChecksum().AddUint64(a).AddUint64(b)
		y := NewChecksum().AddUint64(b).AddUint64(a)
		return x != y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetaImplementsWorkload(t *testing.T) {
	var w Workload = Meta{Name: "n", Kind: KindTrain}
	if w.WorkloadName() != "n" || w.WorkloadKind() != KindTrain {
		t.Error("Meta does not round-trip its fields")
	}
}

func TestGeneratedNameRoundTrip(t *testing.T) {
	cases := []struct {
		seed  int64
		index int
	}{
		{0, 0}, {42, 7}, {-3, 1}, {1 << 40, 999},
	}
	for _, c := range cases {
		name := GeneratedName(c.seed, c.index)
		seed, index, ok := ParseGeneratedName(name)
		if !ok || seed != c.seed || index != c.index {
			t.Errorf("ParseGeneratedName(%q) = (%d, %d, %v), want (%d, %d, true)",
				name, seed, index, ok, c.seed, c.index)
		}
	}
}

func TestParseGeneratedNameRejects(t *testing.T) {
	bad := []string{
		"",            // empty
		"refrate",     // inventory name
		"alberta.1",   // inventory name
		"gen.0",       // pre-contract form, no seed
		"gen.s",       // no digits
		"gen.s5",      // no index
		"gen.s5.",     // empty index
		"gen.s.3",     // empty seed
		"gen.s01.2",   // alias: leading zero would not re-render
		"gen.s5.03",   // alias in index
		"gen.s5.-1",   // negative index
		"gen.s5.3.1",  // seed "5.3" has a dot but fails ParseInt
		"gen.s5.3 ",   // trailing junk
		"Gen.s5.3",    // case matters
	}
	for _, name := range bad {
		if _, _, ok := ParseGeneratedName(name); ok {
			t.Errorf("ParseGeneratedName(%q) accepted, want rejection", name)
		}
	}
}

func TestResolveWorkloadInventoryAndErrors(t *testing.T) {
	b := newFake("600.fake_s")
	w, err := ResolveWorkload(b, "alberta.2")
	if err != nil || w.WorkloadName() != "alberta.2" {
		t.Fatalf("ResolveWorkload(alberta.2) = %v, %v", w, err)
	}
	if _, err := ResolveWorkload(b, "gen.s5.0"); err == nil {
		t.Error("generated name resolved on a non-generator benchmark")
	}
	if _, err := ResolveWorkload(b, "nope"); err == nil {
		t.Error("unknown name resolved")
	}
}
