#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke test of the albertad service.
#
# Phase 1 (single daemon): submit a one-benchmark characterization job,
# poll it to completion, fetch the report.Suite envelope, and diff it
# against the envelope `albertarun -json` emits for the same matrix
# (wall_seconds normalized away — it is the one nondeterministic field).
# Assert cell-cache behavior: a repeat request is a born-done 200, a
# presentation-only change (different sections) is also a pure cache hit,
# and a two-benchmark job overlapping the cached one reuses its cells and
# executes only the new benchmark. Then SIGTERM the daemon and verify it
# drains and exits cleanly.
#
# Phase 2 (coordinator + 2 workers): boot two worker daemons and a
# coordinator sharding cells across them, run the same job, and diff the
# merged envelope against the same `albertarun -json` baseline — the
# merge-determinism check. The job's cells breakdown must show every cell
# executed remotely.
#
# Phase 3 (sampled mode, same fleet): run the job again with
# {"sampled": true} and diff the merged envelope against
# `albertarun -sampled -json`. Sampled counters are extrapolated, but
# deterministically — so the envelope must still match byte for byte
# (wall_seconds normalized) — and the sampled job must not have been
# answered from the exact job's cells (sampled and exact cells never
# alias).
set -euo pipefail

BENCH=${BENCH:-557.xz_r}
BENCH2=${BENCH2:-505.mcf_r}
REPS=${REPS:-1}
ADDR=${ADDR:-127.0.0.1:18431}
WORKER1_ADDR=${WORKER1_ADDR:-127.0.0.1:18432}
WORKER2_ADDR=${WORKER2_ADDR:-127.0.0.1:18433}
COORD_ADDR=${COORD_ADDR:-127.0.0.1:18434}

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

# start_daemon <logname> <args...> — boot albertad, wait for /healthz.
# Sets $daemon_pid and appends to pids.
start_daemon() {
    local logname=$1 addr=$2
    shift 2
    "$workdir/albertad" -addr "$addr" "$@" >"$workdir/$logname.log" 2>&1 &
    daemon_pid=$!
    pids+=("$daemon_pid")
    for i in $(seq 1 50); do
        if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
            return 0
        fi
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            echo "albertad ($logname) died during startup:" >&2
            cat "$workdir/$logname.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    curl -fsS "http://$addr/healthz" >/dev/null
}

# submit <base> <request-json> — POST a job, echo its id.
submit() {
    local job
    job=$(curl -fsS -X POST -d "$2" "$1/v1/jobs")
    local id
    id=$(echo "$job" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
    [[ -n "$id" ]] || { echo "no job id in: $job" >&2; exit 1; }
    echo "$id"
}

# poll <base> <id> — poll a job until done (fail on failed/canceled).
poll() {
    local state=""
    for i in $(seq 1 600); do
        state=$(curl -fsS "$1/v1/jobs/$2" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
        case "$state" in
            done) return 0 ;;
            failed|canceled) echo "job $2 reached state $state" >&2; exit 1 ;;
        esac
        sleep 0.2
    done
    echo "job $2 stuck (state=$state)" >&2
    exit 1
}

# wall_seconds is measured wall time, different on every run (and on
# every node); everything else in the envelope must match byte for byte.
normalize() { sed 's/"wall_seconds": [0-9.e+-]*/"wall_seconds": 0/' "$1"; }

echo "== build"
go build -o "$workdir/albertad" ./cmd/albertad
go build -o "$workdir/albertarun" ./cmd/albertarun

echo "== albertarun -json baseline ($BENCH, reps $REPS)"
"$workdir/albertarun" -json -bench "$BENCH" -reps "$REPS" \
    -table1 -table2 -fig1 -fig2 -kernels >"$workdir/cli.json"

echo "== phase 1: single daemon on $ADDR"
start_daemon albertad "$ADDR" -parallel 1
single_pid=$daemon_pid
BASE="http://$ADDR"

request=$(printf '{"benchmarks": ["%s"], "config": {"reps": %d}}' "$BENCH" "$REPS")
id=$(submit "$BASE" "$request")
echo "== poll $id"
poll "$BASE" "$id"

echo "== fetch result and diff against albertarun -json"
curl -fsS "$BASE/v1/jobs/$id/result" >"$workdir/service.json"
if ! diff <(normalize "$workdir/service.json") <(normalize "$workdir/cli.json"); then
    echo "service and CLI envelopes differ" >&2
    exit 1
fi

echo "== cache hit must answer 200 with state done"
hit=$(curl -fsS -o "$workdir/hit.json" -w '%{http_code}' -X POST -d "$request" "$BASE/v1/jobs")
[[ "$hit" == 200 ]] || { echo "cache hit answered $hit" >&2; cat "$workdir/hit.json" >&2; exit 1; }
grep -q '"cached": true' "$workdir/hit.json" || { echo "second submit not served from cache" >&2; exit 1; }

echo "== presentation-only change (different sections) is also a cache hit"
request_sections=$(printf '{"benchmarks": ["%s"], "config": {"reps": %d}, "sections": ["kernels"]}' "$BENCH" "$REPS")
hit=$(curl -fsS -o "$workdir/sections.json" -w '%{http_code}' -X POST -d "$request_sections" "$BASE/v1/jobs")
[[ "$hit" == 200 ]] || { echo "section-only change answered $hit (want 200)" >&2; cat "$workdir/sections.json" >&2; exit 1; }
grep -q '"cached": true' "$workdir/sections.json" || { echo "section-only change not served from cache" >&2; exit 1; }

echo "== overlapping job {$BENCH2, $BENCH} reuses $BENCH's cells"
request2=$(printf '{"benchmarks": ["%s", "%s"], "config": {"reps": %d}}' "$BENCH2" "$BENCH" "$REPS")
id2=$(submit "$BASE" "$request2")
poll "$BASE" "$id2"
curl -fsS "$BASE/v1/jobs/$id2" >"$workdir/overlap.json"
grep -q '"cached": [1-9]' "$workdir/overlap.json" || {
    echo "overlapping job read no cells from the cache:" >&2
    cat "$workdir/overlap.json" >&2
    exit 1
}

echo "== GET /v1/cache reports cells, DELETE flushes"
curl -fsS "$BASE/v1/cache" >"$workdir/cache.json"
grep -q '"cells": [1-9]' "$workdir/cache.json" || { echo "cache introspection empty: $(cat "$workdir/cache.json")" >&2; exit 1; }
curl -fsS -X DELETE "$BASE/v1/cache" | grep -q '"flushed": [1-9]' || { echo "cache flush reported nothing" >&2; exit 1; }

echo "== SIGTERM drains and exits"
kill -TERM "$single_pid"
for i in $(seq 1 100); do
    kill -0 "$single_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$single_pid" 2>/dev/null; then
    echo "albertad did not exit after SIGTERM" >&2
    exit 1
fi
wait "$single_pid" || { echo "albertad exited non-zero" >&2; cat "$workdir/albertad.log" >&2; exit 1; }
grep -q drained "$workdir/albertad.log" || { echo "no drain message in log" >&2; cat "$workdir/albertad.log" >&2; exit 1; }

echo "== phase 2: coordinator on $COORD_ADDR + workers on $WORKER1_ADDR, $WORKER2_ADDR"
start_daemon worker1 "$WORKER1_ADDR" -worker -parallel 1
start_daemon worker2 "$WORKER2_ADDR" -worker -parallel 1
start_daemon coordinator "$COORD_ADDR" -parallel 1 \
    -workers "http://$WORKER1_ADDR,http://$WORKER2_ADDR"
CBASE="http://$COORD_ADDR"

cid=$(submit "$CBASE" "$request")
echo "== poll $cid (coordinator)"
poll "$CBASE" "$cid"

echo "== every cell must have executed on a worker"
curl -fsS "$CBASE/v1/jobs/$cid" >"$workdir/coord-job.json"
grep -q '"remote": [1-9]' "$workdir/coord-job.json" || {
    echo "coordinator executed no cells remotely:" >&2
    cat "$workdir/coord-job.json" >&2
    exit 1
}
grep -q '"local": 0' "$workdir/coord-job.json" || {
    echo "coordinator fell back to local execution with a healthy fleet:" >&2
    cat "$workdir/coord-job.json" >&2
    exit 1
}

echo "== merged envelope must match the single-node albertarun baseline"
curl -fsS "$CBASE/v1/jobs/$cid/result" >"$workdir/coord.json"
if ! diff <(normalize "$workdir/coord.json") <(normalize "$workdir/cli.json"); then
    echo "coordinator envelope differs from single-node envelope" >&2
    exit 1
fi

echo "== phase 3: sampled job on the same fleet vs albertarun -sampled -json"
"$workdir/albertarun" -json -sampled -bench "$BENCH" -reps "$REPS" \
    -table1 -table2 -fig1 -fig2 -kernels >"$workdir/cli-sampled.json"

request_sampled=$(printf '{"benchmarks": ["%s"], "config": {"reps": %d, "sampled": true}}' "$BENCH" "$REPS")
sid=$(submit "$CBASE" "$request_sampled")
echo "== poll $sid (coordinator, sampled)"
poll "$CBASE" "$sid"

echo "== sampled job must have executed, not hit the exact job's cells"
curl -fsS "$CBASE/v1/jobs/$sid" >"$workdir/coord-sampled-job.json"
grep -q '"cached": 0' "$workdir/coord-sampled-job.json" || {
    echo "sampled job was answered from exact cells — cell keys alias:" >&2
    cat "$workdir/coord-sampled-job.json" >&2
    exit 1
}

echo "== sampled merged envelope must match albertarun -sampled -json"
curl -fsS "$CBASE/v1/jobs/$sid/result" >"$workdir/coord-sampled.json"
if ! diff <(normalize "$workdir/coord-sampled.json") <(normalize "$workdir/cli-sampled.json"); then
    echo "sampled coordinator envelope differs from albertarun -sampled" >&2
    exit 1
fi
grep -q '"sampled": true' "$workdir/coord-sampled.json" || {
    echo "sampled envelope carries no sampled markers" >&2
    exit 1
}

echo "serve-smoke: OK"
