#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke test of the albertad service.
#
# Starts the daemon, submits a one-benchmark characterization job, polls it
# to completion, fetches the report.Suite envelope, and diffs it against
# the envelope `albertarun -json` emits for the same matrix (wall_seconds
# normalized away — it is the one nondeterministic field). Then SIGTERMs
# the daemon and verifies it drains and exits cleanly.
set -euo pipefail

BENCH=${BENCH:-557.xz_r}
REPS=${REPS:-1}
ADDR=${ADDR:-127.0.0.1:18431}
BASE="http://$ADDR"

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -9 "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/albertad" ./cmd/albertad
go build -o "$workdir/albertarun" ./cmd/albertarun

echo "== start albertad on $ADDR"
"$workdir/albertad" -addr "$ADDR" -parallel 1 >"$workdir/albertad.log" 2>&1 &
daemon_pid=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "albertad died during startup:" >&2
        cat "$workdir/albertad.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

echo "== submit job ($BENCH, reps $REPS, all sections)"
request=$(printf '{"benchmarks": ["%s"], "config": {"reps": %d}}' "$BENCH" "$REPS")
job=$(curl -fsS -X POST -d "$request" "$BASE/v1/jobs")
id=$(echo "$job" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[[ -n "$id" ]] || { echo "no job id in: $job" >&2; exit 1; }

echo "== poll $id"
state=""
for i in $(seq 1 300); do
    state=$(curl -fsS "$BASE/v1/jobs/$id" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
    case "$state" in
        done) break ;;
        failed|canceled) echo "job reached state $state" >&2; exit 1 ;;
    esac
    sleep 0.2
done
[[ "$state" == done ]] || { echo "job stuck (state=$state)" >&2; exit 1; }

echo "== fetch result and diff against albertarun -json"
curl -fsS "$BASE/v1/jobs/$id/result" >"$workdir/service.json"
"$workdir/albertarun" -json -bench "$BENCH" -reps "$REPS" \
    -table1 -table2 -fig1 -fig2 -kernels >"$workdir/cli.json"

# wall_seconds is measured wall time, different on every run; everything
# else in the envelope must match byte for byte.
normalize() { sed 's/"wall_seconds": [0-9.e+-]*/"wall_seconds": 0/' "$1"; }
if ! diff <(normalize "$workdir/service.json") <(normalize "$workdir/cli.json"); then
    echo "service and CLI envelopes differ" >&2
    exit 1
fi

echo "== cache hit must answer 200 with state done"
hit=$(curl -fsS -o "$workdir/hit.json" -w '%{http_code}' -X POST -d "$request" "$BASE/v1/jobs")
[[ "$hit" == 200 ]] || { echo "cache hit answered $hit" >&2; cat "$workdir/hit.json" >&2; exit 1; }
grep -q '"cached": true' "$workdir/hit.json" || { echo "second submit not served from cache" >&2; exit 1; }

echo "== SIGTERM drains and exits"
kill -TERM "$daemon_pid"
for i in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    echo "albertad did not exit after SIGTERM" >&2
    exit 1
fi
wait "$daemon_pid" || { echo "albertad exited non-zero" >&2; cat "$workdir/albertad.log" >&2; exit 1; }
grep -q drained "$workdir/albertad.log" || { echo "no drain message in log" >&2; cat "$workdir/albertad.log" >&2; exit 1; }
daemon_pid=""

echo "serve-smoke: OK"
