#!/usr/bin/env bash
# sweep-smoke.sh — end-to-end smoke test of the workload-space sweep.
#
# Runs the same 16-workloads × 3-benchmarks sweep through every frontend
# and requires the identical reduction from each:
#
#   1. cmd/albertasweep serial (-parallel 1) vs parallel (-parallel 8):
#      the -json reports must be byte-identical — selection is a pure
#      function of the plan, not of cell completion order.
#   2. albertad's POST /v1/sweeps (NDJSON): every cell arrives as a
#      stream frame, and the final report frame must equal the CLI's
#      report (key-sorted JSON comparison; the documents are fully
#      deterministic — sweep reports carry no wall-clock fields).
#   3. The same request again: every cell frame must report
#      "source":"cached" — repeated sweep cells are free.
#   4. The SSE variant (Accept: text/event-stream) must deliver the same
#      frames as named events.
set -euo pipefail

command -v jq >/dev/null || { echo "sweep-smoke.sh requires jq" >&2; exit 1; }

BENCHES=${BENCHES:-505.mcf_r,531.deepsjeng_r,557.xz_r}
N=${N:-16}
K=${K:-3}
SEED=${SEED:-5}
REPS=${REPS:-1}
ADDR=${ADDR:-127.0.0.1:18441}

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/albertasweep" ./cmd/albertasweep
go build -o "$workdir/albertad" ./cmd/albertad

echo "== CLI sweep, serial ($BENCHES, n=$N, k=$K, seed=$SEED)"
"$workdir/albertasweep" -benches "$BENCHES" -n "$N" -k "$K" -seed "$SEED" \
    -reps "$REPS" -parallel 1 -json >"$workdir/cli-serial.json"

echo "== CLI sweep, parallel (8 workers) must select identically"
"$workdir/albertasweep" -benches "$BENCHES" -n "$N" -k "$K" -seed "$SEED" \
    -reps "$REPS" -parallel 8 -json >"$workdir/cli-parallel.json"
if ! diff "$workdir/cli-serial.json" "$workdir/cli-parallel.json"; then
    echo "serial and parallel sweeps selected different representatives" >&2
    exit 1
fi

echo "== albertad on $ADDR"
"$workdir/albertad" -addr "$ADDR" -parallel 2 >"$workdir/albertad.log" 2>&1 &
pids+=($!)
for i in $(seq 1 50); do
    curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
BASE="http://$ADDR"

benches_json=$(echo "$BENCHES" | jq -R 'split(",")')
request=$(jq -n --argjson b "$benches_json" --argjson n "$N" --argjson k "$K" \
    --argjson seed "$SEED" --argjson reps "$REPS" \
    '{benchmarks: $b, per_benchmark: $n, k: $k, seed: $seed, config: {reps: $reps}}')

echo "== POST /v1/sweeps (NDJSON stream)"
curl -fsSN -X POST -d "$request" "$BASE/v1/sweeps" >"$workdir/stream.ndjson"

total=$((N * 3))
cells=$(jq -s '[.[] | select(.kind=="cell")] | length' "$workdir/stream.ndjson")
[[ "$cells" == "$total" ]] || { echo "streamed $cells cell frames, want $total" >&2; exit 1; }
selections=$(jq -s '[.[] | select(.kind=="selection")] | length' "$workdir/stream.ndjson")
[[ "$selections" == 3 ]] || { echo "streamed $selections selection frames, want 3" >&2; exit 1; }

echo "== service report frame must equal the CLI report"
jq -s '[.[] | select(.kind=="report")][0].report' "$workdir/stream.ndjson" | jq -S . >"$workdir/service-report.json"
jq -S . "$workdir/cli-serial.json" >"$workdir/cli-report.json"
if ! diff "$workdir/service-report.json" "$workdir/cli-report.json"; then
    echo "service sweep report differs from the CLI's" >&2
    exit 1
fi

echo "== repeated sweep must answer every cell from the cache"
curl -fsSN -X POST -d "$request" "$BASE/v1/sweeps" >"$workdir/stream2.ndjson"
uncached=$(jq -s '[.[] | select(.kind=="cell" and .source!="cached")] | length' "$workdir/stream2.ndjson")
[[ "$uncached" == 0 ]] || { echo "$uncached cells of the repeat sweep were re-executed" >&2; exit 1; }
jq -s '[.[] | select(.kind=="report")][0].report' "$workdir/stream2.ndjson" | jq -S . >"$workdir/service-report2.json"
if ! diff "$workdir/service-report2.json" "$workdir/cli-report.json"; then
    echo "cached sweep selected differently" >&2
    exit 1
fi

echo "== SSE variant streams the same frames as named events"
curl -fsSN -X POST -H 'Accept: text/event-stream' -d "$request" "$BASE/v1/sweeps" >"$workdir/stream.sse"
for ev in cell selection report; do
    grep -q "^event: $ev\$" "$workdir/stream.sse" || { echo "SSE stream missing event: $ev" >&2; exit 1; }
done

echo "sweep-smoke: OK"
