GO ?= go

.PHONY: build vet lint test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism & harness-invariant static analysis (see DESIGN.md).
lint:
	$(GO) run ./cmd/albertalint ./...

test:
	$(GO) test ./...

# The harness worker pool is race-checked on every run.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x .

check: build vet lint race
