GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The harness worker pool is race-checked on every run.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x .

check: build vet race
