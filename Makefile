GO ?= go

.PHONY: build vet lint lint-sarif leak-race test race bench bench-check bench-budget bench-smoke diff-full diff-sampled serve-smoke sweep-smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism & harness-invariant static analysis (see DESIGN.md §14).
# Exit 1 covers findings from both rule families AND stale //lint:allow
# suppressions, so `make lint` is also the zero-stale-suppressions gate.
lint:
	$(GO) run ./cmd/albertalint ./...

# Same analysis as a SARIF 2.1.0 document (CI uploads it as an artifact).
lint-sarif:
	$(GO) run ./cmd/albertalint -format sarif ./... > albertalint.sarif

# Race + goroutine-leak gate for the concurrent packages: their TestMain
# runs under internal/leakcheck, so any goroutine surviving the package
# run fails it even when every test passes.
leak-race:
	$(GO) test -race -count=1 ./internal/service/... ./internal/cluster/...

test:
	$(GO) test ./...

# The harness worker pool is race-checked on every run.
race:
	$(GO) test -race ./...

# Regenerate the tracked benchmark baseline: event-path microbenchmarks
# (optimized vs reference simulators) plus the full-suite wall-clock
# comparison. Slow — it characterizes the whole suite twice.
bench:
	$(GO) run ./cmd/albertabench -out BENCH_profiler.json

# Warn-only drift check of the committed baseline: re-times the event-path
# microbenchmarks and flags anything outside the tolerance band. Never fails
# on timing (CI runners are too noisy for a hard gate); structural drift —
# a micro missing from the baseline — is a real error.
bench-check:
	$(GO) run ./cmd/albertabench -check BENCH_profiler.json

# Warn-only budget assertion for the bytecode-compiled interpreter cells:
# re-times perlbench and gcc against the baseline's per_bench rows and
# warns when either exceeds its recorded wall clock by the tolerance band.
bench-budget:
	$(GO) run ./cmd/albertabench -budget BENCH_profiler.json

# One-iteration pass over every go-test benchmark; catches bit-rot without
# the cost of a real measurement.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./internal/perf/ .

# Full differential sweep: every benchmark × every workload, optimized vs
# reference event path AND prepared vs cold runs, Reports required
# bit-identical.
diff-full:
	ALBERTA_DIFF_FULL=1 $(GO) test -run 'TestSuiteDifferentialReference|TestPreparedMatchesColdRuns' -v ./internal/harness/

# Sampled-vs-exact differential gate: every benchmark × every workload is
# measured both ways and each report counter must stay within its
# density-tiered tolerance (perf.DefaultTolerance). Hard fail — the errors
# are deterministic, so a violation is a regression, not noise.
diff-sampled:
	ALBERTA_DIFF_FULL=1 $(GO) test -run 'TestSampledWithinTolerance' -v ./internal/harness/

# End-to-end smoke of the albertad service: a single daemon run (envelope
# diffed against albertarun -json, cell-cache hit and dedup assertions,
# SIGTERM drain), then a coordinator + 2 workers run whose merged envelope
# must be byte-identical to the same baseline (wall_seconds normalized).
serve-smoke:
	./scripts/serve-smoke.sh

# End-to-end smoke of the workload-space sweep: 16 generated workloads ×
# 3 benchmarks through cmd/albertasweep (serial and parallel runs must
# emit byte-identical -json reports) and through POST /v1/sweeps (the
# streamed report frame must equal the CLI's, and a repeated sweep must
# answer every cell from the cache).
sweep-smoke:
	./scripts/sweep-smoke.sh

check: build vet lint race
