GO ?= go

.PHONY: build vet lint test race bench bench-smoke diff-full check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism & harness-invariant static analysis (see DESIGN.md).
lint:
	$(GO) run ./cmd/albertalint ./...

test:
	$(GO) test ./...

# The harness worker pool is race-checked on every run.
race:
	$(GO) test -race ./...

# Regenerate the tracked benchmark baseline: event-path microbenchmarks
# (optimized vs reference simulators) plus the full-suite wall-clock
# comparison. Slow — it characterizes the whole suite twice.
bench:
	$(GO) run ./cmd/albertabench -out BENCH_profiler.json

# One-iteration pass over every go-test benchmark; catches bit-rot without
# the cost of a real measurement.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./internal/perf/ .

# Full differential sweep: every benchmark × every workload, optimized vs
# reference event path, Reports required bit-identical.
diff-full:
	ALBERTA_DIFF_FULL=1 $(GO) test -run TestSuiteDifferentialReference -v ./internal/harness/

check: build vet lint race
