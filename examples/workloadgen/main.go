// Workloadgen: exercise every benchmark's workload generator — the paper's
// "researchers can generate as many workloads as they wish" — and verify
// the generated inputs by running them. Also demonstrates the OneFile tool
// on a generated multi-file program.
package main

import (
	"fmt"
	"log"

	"repro/internal/benchmarks"
	"repro/internal/benchmarks/gcc"
	"repro/internal/benchmarks/gcc/cc"
	"repro/internal/core"
	"repro/internal/onefile"
	"repro/internal/perf"
)

func main() {
	suite, err := benchmarks.Suite()
	if err != nil {
		log.Fatal(err)
	}
	const seed, n = 7, 2
	for _, b := range suite.Benchmarks() {
		gen, ok := b.(core.Generator)
		if !ok {
			// 500.perlbench_r: the paper found no way to build new
			// workloads without Perl's C extension modules.
			fmt.Printf("%-18s no generator (matches the paper)\n", b.Name())
			continue
		}
		ws, err := gen.GenerateWorkloads(seed, n)
		if err != nil {
			log.Fatalf("%s: %v", b.Name(), err)
		}
		for _, w := range ws {
			p := perf.NewWithOptions(perf.Options{Stride: 8})
			res, err := b.Run(w, p)
			if err != nil {
				log.Fatalf("%s/%s: %v", b.Name(), w.WorkloadName(), err)
			}
			fmt.Printf("%-18s %-10s checksum=%016x\n", b.Name(), w.WorkloadName(), res.Checksum)
		}
	}

	// OneFile: combine a generated multi-file program into a single
	// compilation unit and prove it still compiles and runs.
	fmt.Println("\nOneFile demonstration:")
	files := gcc.GenerateMultiFile(3, seed)
	for _, f := range files {
		fmt.Printf("  input %s (%d bytes)\n", f.Name, len(f.Content))
	}
	combined, err := onefile.Combine(files)
	if err != nil {
		log.Fatal(err)
	}
	unit, err := cc.CompileSource(combined, cc.O2, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cc.Run(unit, cc.VMOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  combined unit: %d bytes, main returned %d, output checksum %x\n",
		len(combined), res.Return, res.Output)
}
