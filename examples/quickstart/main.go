// Quickstart: run one benchmark with its SPEC-style and Alberta workloads
// and print the modeled top-down breakdown for each — the minimal "aha" of
// the library: the same program behaves differently under different
// workloads, and the Alberta workloads expose that spread.
package main

import (
	"fmt"
	"log"

	"repro/internal/benchmarks/xz"
	"repro/internal/core"
	"repro/internal/perf"
)

func main() {
	bench := xz.New()
	workloads, err := core.MeasurementWorkloads(bench)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s — %s\n", bench.Name(), bench.Area())
	fmt.Printf("%-24s %-8s %10s | %8s %8s %8s %8s\n",
		"workload", "kind", "cycles", "front", "back", "badspec", "retire")
	for _, w := range workloads {
		p := perf.New()
		res, err := bench.Run(w, p)
		if err != nil {
			log.Fatalf("%s: %v", w.WorkloadName(), err)
		}
		rep := p.Report()
		td := rep.TopDown
		fmt.Printf("%-24s %-8s %10d | %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			w.WorkloadName(), w.WorkloadKind(), rep.Cycles,
			td.FrontEnd*100, td.BackEnd*100, td.BadSpec*100, td.Retiring*100)
		_ = res
	}

	// Generate two fresh workloads — the capability the Alberta Workloads
	// exist to provide.
	fmt.Println("\nfreshly generated workloads (seed 42):")
	var gen core.Generator = bench
	ws, err := gen.GenerateWorkloads(42, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range ws {
		p := perf.New()
		res, err := bench.Run(w, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s checksum=%016x cycles=%d\n",
			w.WorkloadName(), res.Checksum, p.Report().Cycles)
	}
}
