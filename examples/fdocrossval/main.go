// FDO cross-validation: the study the paper says the Alberta Workloads
// make possible (Section VII). For each bundled input-sensitive program it
// compares three evaluation methodologies:
//
//  1. the criticized practice — train and evaluate on the SAME input;
//  2. the fixed train/ref pair — train on one input, evaluate on another;
//  3. leave-one-out cross-validation over all inputs (the paper's
//     recommendation, possible only with many workloads).
package main

import (
	"fmt"
	"log"

	"repro/internal/fdo"
)

func main() {
	for _, p := range fdo.StudyPrograms() {
		fmt.Printf("=== %s (%d inputs) ===\n", p.Name, len(p.Inputs))

		// Methodology 1: train == eval (hidden learning).
		self, err := fdo.TrainEval(p, p.Inputs[0].Name, p.Inputs[0].Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("self-trained  (train=%s eval=%s):  %.3fx\n",
			p.Inputs[0].Name, p.Inputs[0].Name, self.Speedup)

		// Methodology 2: one fixed train/ref pair.
		pair, err := fdo.TrainEval(p, p.Inputs[0].Name, p.Inputs[1].Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fixed pair    (train=%s eval=%s):  %.3fx\n",
			p.Inputs[0].Name, p.Inputs[1].Name, pair.Speedup)

		// Methodology 3: cross-validation.
		cv, err := fdo.CrossValidate(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(fdo.FormatCrossValidation(cv))
		fmt.Println()
	}
}
