// Characterize: the Section V pipeline on a chosen slice of the suite —
// run every workload, summarize with the paper's statistics (Eqs. 1–5),
// and print a Table II fragment plus the Figure 1/2 data series.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/harness/report"
)

func main() {
	which := flag.String("benchmarks", "531.deepsjeng_r,557.xz_r",
		"comma-separated benchmark names to characterize")
	reps := flag.Int("reps", 3, "repetitions per workload (paper: 3)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "measurement worker pool size (1 = serial)")
	flag.Parse()

	full, err := benchmarks.Suite()
	if err != nil {
		log.Fatal(err)
	}
	var members []core.Benchmark
	var names []string
	for _, name := range strings.Split(*which, ",") {
		name = strings.TrimSpace(name)
		b, ok := full.Lookup(name)
		if !ok {
			log.Fatalf("unknown benchmark %q (see cmd/albertarun -list)", name)
		}
		members = append(members, b)
		names = append(names, name)
	}
	suite, err := core.NewSuite(members...)
	if err != nil {
		log.Fatal(err)
	}

	results, err := harness.RunSuite(context.Background(), suite,
		harness.Options{Reps: *reps, Stride: 2, Workers: *parallel})
	if err != nil {
		log.Fatal(err)
	}

	rows, err := report.TableII(results, results.SortedBenchmarks())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.FormatTableII(rows))

	fig1, err := report.Figure1(results, names...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.FormatFigure1(fig1))

	fig2, err := report.Figure2(results, 5, names...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.FormatFigure2(fig2))
}
