// Command albertabench measures the profiler event path and maintains the
// tracked benchmark baseline, BENCH_profiler.json. It times each event
// microbenchmark twice — once on the optimized simulators and once on the
// retained pre-optimization reference path (perf.Options.Reference) — and
// then runs the full characterization suite both ways for the wall-clock
// comparison:
//
//	albertabench -out BENCH_profiler.json   # regenerate the baseline (make bench)
//	albertabench -micro                     # microbenchmarks only, print to stdout
//
// The microbenchmark bodies mirror internal/perf's go-test benchmarks
// (BenchmarkLoadHit etc.); the committed JSON is the reviewable record of
// the speedup.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/harness"
	"repro/internal/perf"
)

// microBench is one event-path microbenchmark: body issues profiler events
// for i in [0, n).
type microBench struct {
	name string
	body func(p *perf.Profiler, n int)
}

// micros mirrors internal/perf's benchmark suite. Each entry represents the
// event shape a converted kernel inner loop issues.
var micros = []microBench{
	{"load_hit", func(p *perf.Profiler, n int) {
		for i := 0; i < n; i++ {
			p.Load(uint64(i&511) * 8)
		}
	}},
	{"load_stream", func(p *perf.Profiler, n int) {
		for i := 0; i < n; i++ {
			p.Load(uint64(i) * 8 % (64 << 20))
		}
	}},
	{"store", func(p *perf.Profiler, n int) {
		for i := 0; i < n; i++ {
			p.Store(uint64(i&511) * 8)
		}
	}},
	{"branch", func(p *perf.Profiler, n int) {
		for i := 0; i < n; i++ {
			p.OpsBranch(8, 3, i&7 != 0)
		}
	}},
	{"load_range", func(p *perf.Profiler, n int) {
		for i := 0; i < n; i++ {
			p.LoadRange(uint64(i)*512%(16<<20), 8, 64)
		}
	}},
	{"load_store", func(p *perf.Profiler, n int) {
		for i := 0; i < n; i++ {
			p.LoadStore(uint64(i&4095) * 16)
		}
	}},
}

// MicroResult is one microbenchmark row of the baseline.
type MicroResult struct {
	Name       string  `json:"name"`
	NsPerOpOpt float64 `json:"ns_per_op_opt"`
	NsPerOpRef float64 `json:"ns_per_op_ref"`
	Speedup    float64 `json:"speedup"`
}

// SuiteResult is the full-suite wall-clock comparison.
type SuiteResult struct {
	WallSecondsOpt float64 `json:"wall_seconds_opt"`
	WallSecondsRef float64 `json:"wall_seconds_ref"`
	ReductionPct   float64 `json:"reduction_pct"`
}

// Baseline is the schema of BENCH_profiler.json.
type Baseline struct {
	Go         string        `json:"go"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Micro      []MicroResult `json:"micro"`
	Suite      *SuiteResult  `json:"suite,omitempty"`
}

// measure times one micro body on one path via the testing package's
// calibration loop.
func measure(mb microBench, reference bool) float64 {
	res := testing.Benchmark(func(b *testing.B) {
		p := perf.NewWithOptions(perf.Options{Reference: reference})
		p.Enter("bench")
		b.ResetTimer()
		mb.body(p, b.N)
	})
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// runSuite times one full characterization run (reps=1, stride=1, the
// albertarun defaults apart from repetitions).
func runSuite(reference bool) (float64, error) {
	suite, err := benchmarks.CharacterizedSuite()
	if err != nil {
		return 0, err
	}
	opts := harness.Options{
		Reps:      1,
		Stride:    1,
		Workers:   runtime.GOMAXPROCS(0),
		Reference: reference,
	}
	start := time.Now()
	if _, err := harness.RunSuite(context.Background(), suite, opts); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

func main() {
	out := flag.String("out", "", "write the baseline JSON to this file (stdout when empty)")
	microOnly := flag.Bool("micro", false, "skip the full-suite wall-clock comparison")
	suiteCount := flag.Int("suitecount", 3, "suite timing passes per path; the minimum is recorded")
	flag.Parse()

	if err := run(*out, *microOnly, *suiteCount); err != nil {
		fmt.Fprintln(os.Stderr, "albertabench:", err)
		os.Exit(1)
	}
}

func run(out string, microOnly bool, suiteCount int) error {
	base := Baseline{Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, mb := range micros {
		opt := measure(mb, false)
		ref := measure(mb, true)
		base.Micro = append(base.Micro, MicroResult{
			Name:       mb.name,
			NsPerOpOpt: round2(opt),
			NsPerOpRef: round2(ref),
			Speedup:    round2(ref / opt),
		})
		fmt.Fprintf(os.Stderr, "albertabench: %-12s opt %8.2f ns/op   ref %8.2f ns/op   %.2fx\n",
			mb.name, opt, ref, ref/opt)
	}

	if !microOnly {
		// Alternate opt/ref passes and keep the per-path minimum: wall-clock
		// noise only ever inflates a measurement, so the minimum is the
		// noise-robust estimator, and interleaving decorrelates slow drift
		// (thermal, co-tenant load) from the opt/ref comparison.
		opt, ref := math.Inf(1), math.Inf(1)
		for i := 0; i < suiteCount; i++ {
			fmt.Fprintf(os.Stderr, "albertabench: suite pass %d/%d (optimized)...\n", i+1, suiteCount)
			o, err := runSuite(false)
			if err != nil {
				return err
			}
			opt = math.Min(opt, o)
			fmt.Fprintf(os.Stderr, "albertabench: suite pass %d/%d (reference)...\n", i+1, suiteCount)
			r, err := runSuite(true)
			if err != nil {
				return err
			}
			ref = math.Min(ref, r)
			fmt.Fprintf(os.Stderr, "albertabench: pass %d: opt %.1fs ref %.1fs (best %.1fs / %.1fs)\n",
				i+1, o, r, opt, ref)
		}
		base.Suite = &SuiteResult{
			WallSecondsOpt: round2(opt),
			WallSecondsRef: round2(ref),
			ReductionPct:   round2((1 - opt/ref) * 100),
		}
		fmt.Fprintf(os.Stderr, "albertabench: suite opt %.1fs   ref %.1fs   -%.1f%%\n",
			opt, ref, base.Suite.ReductionPct)
	}

	doc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(out, doc, 0o644)
}

// round2 keeps the committed baseline diffable: two decimals are plenty for
// ns/op and seconds alike.
func round2(v float64) float64 {
	if v < 0 {
		return -round2(-v)
	}
	return float64(int64(v*100+0.5)) / 100
}
