// Command albertabench measures the profiler event path and maintains the
// tracked benchmark baseline, BENCH_profiler.json. It times each event
// microbenchmark twice — once on the optimized simulators and once on the
// retained pre-optimization reference path (perf.Options.Reference) — and
// then runs the full characterization suite both ways for the wall-clock
// comparison:
//
//	albertabench -out BENCH_profiler.json     # regenerate the baseline (make bench)
//	albertabench -micro                       # microbenchmarks only, print to stdout
//	albertabench -check BENCH_profiler.json   # warn-only drift check (make bench-check)
//
// The suite section carries a serial row (workers=1) and, on multi-CPU
// machines, a parallel row (workers=GOMAXPROCS or -workers, the resolved
// count recorded in the row; a 1-CPU machine omits the row, and an
// explicit -workers below 2 is an error) — each with the optimized path's
// allocation profile (allocs/bytes/GC cycles per characterization), which
// is deterministic and therefore reviewable the same way cycle counts are.
// A sampled section compares exact characterization against phase-sampled
// simulation (suite and per-benchmark rows: exact vs sampled wall,
// speedup, and worst gate-eligible counter error).
//
// The microbenchmark bodies mirror internal/perf's go-test benchmarks
// (BenchmarkLoadHit etc.); the committed JSON is the reviewable record of
// the speedup.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/perf"
)

// microBench is one event-path microbenchmark: body issues profiler events
// for i in [0, n).
type microBench struct {
	name string
	body func(p *perf.Profiler, n int)
}

// micros mirrors internal/perf's benchmark suite. Each entry represents the
// event shape a converted kernel inner loop issues.
var micros = []microBench{
	{"load_hit", func(p *perf.Profiler, n int) {
		for i := 0; i < n; i++ {
			p.Load(uint64(i&511) * 8)
		}
	}},
	{"load_stream", func(p *perf.Profiler, n int) {
		for i := 0; i < n; i++ {
			p.Load(uint64(i) * 8 % (64 << 20))
		}
	}},
	{"store", func(p *perf.Profiler, n int) {
		for i := 0; i < n; i++ {
			p.Store(uint64(i&511) * 8)
		}
	}},
	{"branch", func(p *perf.Profiler, n int) {
		for i := 0; i < n; i++ {
			p.OpsBranch(8, 3, i&7 != 0)
		}
	}},
	{"load_range", func(p *perf.Profiler, n int) {
		for i := 0; i < n; i++ {
			p.LoadRange(uint64(i)*512%(16<<20), 8, 64)
		}
	}},
	{"load_store", func(p *perf.Profiler, n int) {
		for i := 0; i < n; i++ {
			p.LoadStore(uint64(i&4095) * 16)
		}
	}},
}

// MicroResult is one microbenchmark row of the baseline.
type MicroResult struct {
	Name       string  `json:"name"`
	NsPerOpOpt float64 `json:"ns_per_op_opt"`
	NsPerOpRef float64 `json:"ns_per_op_ref"`
	Speedup    float64 `json:"speedup"`
}

// SuiteResult is one full-suite comparison row: wall clock on both event
// paths plus the allocation profile of the optimized path (heap-allocation
// counts are deterministic, so they are part of the reviewable record the
// same way cycles are).
type SuiteResult struct {
	// Workers is the actual worker count the row ran with (the parallel
	// row records the resolved GOMAXPROCS, not a symbolic "all").
	Workers        int     `json:"workers"`
	WallSecondsOpt float64 `json:"wall_seconds_opt"`
	WallSecondsRef float64 `json:"wall_seconds_ref"`
	ReductionPct   float64 `json:"reduction_pct"`
	// AllocsPerSuite / BytesPerSuite / GCCycles are runtime.MemStats deltas
	// (Mallocs, TotalAlloc, NumGC) over one optimized-path characterization
	// of the whole suite.
	AllocsPerSuite uint64 `json:"allocs_per_suite"`
	BytesPerSuite  uint64 `json:"bytes_per_suite"`
	GCCycles       uint32 `json:"gc_cycles"`
}

// BenchResult is one per-benchmark row: wall clock and allocation profile
// of a single optimized, serial characterization of that benchmark's
// measurement workloads. Unlike the suite rows it covers all benchmarks,
// including perlbench (which the characterized suite excludes for having no
// Alberta workloads), so engine-level speedups are visible per benchmark.
type BenchResult struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	Allocs      uint64  `json:"allocs"`
	Bytes       uint64  `json:"bytes"`
}

// SampledResult is one exact-vs-sampled comparison row: wall clock of one
// exact characterization against one sampled measure pass (the
// steady-state repeat cost; the one-time profile and warm passes are not
// in it), and the worst relative error over the gate-eligible counters
// (those with at least perf.SparseMin exact events — sub-threshold
// counters are shot noise the gate deliberately ignores).
type SampledResult struct {
	// Name is the benchmark for per-bench rows, empty on the suite row.
	Name               string  `json:"name,omitempty"`
	WallSecondsExact   float64 `json:"wall_seconds_exact"`
	WallSecondsSampled float64 `json:"wall_seconds_sampled"`
	Speedup            float64 `json:"speedup"`
	MaxCounterErr      float64 `json:"max_counter_err"`
}

// Baseline is the schema of BENCH_profiler.json.
type Baseline struct {
	Go         string        `json:"go"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Micro      []MicroResult `json:"micro"`
	// Suite is the serial row (Workers = 1); SuiteParallel runs the same
	// matrix with a worker pool (≥ 2 workers by definition — on a 1-CPU
	// machine the row is omitted rather than recorded as a misleading
	// "parallel" run with one worker).
	Suite         *SuiteResult `json:"suite,omitempty"`
	SuiteParallel *SuiteResult `json:"suite_parallel,omitempty"`
	// SuiteSampled compares one exact serial characterization against
	// phase-sampled simulation of the same matrix; PerBenchSampled breaks
	// it down by benchmark.
	SuiteSampled *SampledResult `json:"suite_sampled,omitempty"`
	// PerBench breaks the optimized serial pass down by benchmark.
	PerBench        []BenchResult   `json:"per_bench,omitempty"`
	PerBenchSampled []SampledResult `json:"per_bench_sampled,omitempty"`
}

// measure times one micro body on one path via the testing package's
// calibration loop.
func measure(mb microBench, reference bool) float64 {
	res := testing.Benchmark(func(b *testing.B) {
		p := perf.NewWithOptions(perf.Options{Reference: reference})
		p.Enter("bench")
		b.ResetTimer()
		mb.body(p, b.N)
	})
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// suitePass is one timed characterization of the whole suite.
type suitePass struct {
	wall   float64
	allocs uint64
	bytes  uint64
	gc     uint32
}

// runSuite times one full characterization run (reps=1, stride=1, the
// albertarun defaults apart from repetitions) and captures the allocation
// delta around it. A forced GC before the pass keeps the NumGC delta from
// charging a previous pass's leftover heap to this one.
func runSuite(reference bool, workers int) (suitePass, error) {
	suite, err := benchmarks.CharacterizedSuite()
	if err != nil {
		return suitePass{}, err
	}
	opts := harness.Options{
		Reps:      1,
		Stride:    1,
		Workers:   workers,
		Reference: reference,
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if _, err := harness.RunSuite(context.Background(), suite, opts); err != nil {
		return suitePass{}, err
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return suitePass{
		wall:   wall,
		allocs: after.Mallocs - before.Mallocs,
		bytes:  after.TotalAlloc - before.TotalAlloc,
		gc:     after.NumGC - before.NumGC,
	}, nil
}

// measureSuite builds one baseline row: suiteCount interleaved opt/ref
// passes, per-path minimum wall (noise only inflates), allocation profile
// from the first optimized pass (allocation counts are deterministic).
func measureSuite(workers, suiteCount int) (*SuiteResult, error) {
	row := &SuiteResult{Workers: workers}
	opt, ref := math.Inf(1), math.Inf(1)
	for i := 0; i < suiteCount; i++ {
		fmt.Fprintf(os.Stderr, "albertabench: suite[workers=%d] pass %d/%d (optimized)...\n", workers, i+1, suiteCount)
		o, err := runSuite(false, workers)
		if err != nil {
			return nil, err
		}
		opt = math.Min(opt, o.wall)
		if i == 0 {
			row.AllocsPerSuite, row.BytesPerSuite, row.GCCycles = o.allocs, o.bytes, o.gc
		}
		fmt.Fprintf(os.Stderr, "albertabench: suite[workers=%d] pass %d/%d (reference)...\n", workers, i+1, suiteCount)
		r, err := runSuite(true, workers)
		if err != nil {
			return nil, err
		}
		ref = math.Min(ref, r.wall)
		fmt.Fprintf(os.Stderr, "albertabench: pass %d: opt %.1fs ref %.1fs (best %.1fs / %.1fs)\n",
			i+1, o.wall, r.wall, opt, ref)
	}
	row.WallSecondsOpt = round2(opt)
	row.WallSecondsRef = round2(ref)
	row.ReductionPct = round2((1 - opt/ref) * 100)
	fmt.Fprintf(os.Stderr, "albertabench: suite[workers=%d] opt %.1fs   ref %.1fs   -%.1f%%   %d allocs / %d bytes / %d GCs\n",
		workers, opt, ref, row.ReductionPct, row.AllocsPerSuite, row.BytesPerSuite, row.GCCycles)
	return row, nil
}

// maxGatedErr is the worst relative error over the gate-eligible rows of a
// sampled-vs-exact diff (counters with at least perf.SparseMin exact
// events; sparser rows are shot noise the diff-sampled gate ignores, so
// recording them here would make the baseline unreadable without saying
// anything about plan quality).
func maxGatedErr(d perf.ReportDiff) float64 {
	worst := 0.0
	for _, c := range d.Counters {
		if c.Events >= perf.SparseMin && c.Rel > worst {
			worst = c.Rel
		}
	}
	return worst
}

// measureSampled compares exact and phase-sampled characterization cell by
// cell over the characterized suite: per cell one exact execution and one
// full sampled pipeline (profile, plan, warm, measure), recording the
// exact wall against the sampled measure pass — the steady-state cost of
// one more sampled measurement — and the worst gate-eligible counter
// error. One pass per cell: wall noise only blurs the speedup column, and
// the error columns are deterministic.
func measureSampled() (*SampledResult, []SampledResult, error) {
	suite, err := benchmarks.CharacterizedSuite()
	if err != nil {
		return nil, nil, err
	}
	ctx := context.Background()
	total := &SampledResult{}
	var rows []SampledResult
	for _, b := range suite.Benchmarks() {
		ws, err := core.MeasurementWorkloads(b)
		if err != nil {
			return nil, nil, err
		}
		row := SampledResult{Name: b.Name()}
		for _, w := range ws {
			c, err := harness.SampledDiff(ctx, b, w, harness.Options{Reps: 1})
			if err != nil {
				return nil, nil, err
			}
			row.WallSecondsExact += c.ExactWall
			row.WallSecondsSampled += c.SampledWall
			if e := maxGatedErr(c.Diff); e > row.MaxCounterErr {
				row.MaxCounterErr = e
			}
		}
		total.WallSecondsExact += row.WallSecondsExact
		total.WallSecondsSampled += row.WallSecondsSampled
		if row.MaxCounterErr > total.MaxCounterErr {
			total.MaxCounterErr = row.MaxCounterErr
		}
		if row.WallSecondsSampled > 0 {
			row.Speedup = round2(row.WallSecondsExact / row.WallSecondsSampled)
		}
		fmt.Fprintf(os.Stderr, "albertabench: sampled %-18s exact %6.2fs   sampled %6.2fs   %.2fx   maxerr %.4f\n",
			row.Name, row.WallSecondsExact, row.WallSecondsSampled, row.Speedup, row.MaxCounterErr)
		row.WallSecondsExact = round2(row.WallSecondsExact)
		row.WallSecondsSampled = round2(row.WallSecondsSampled)
		row.MaxCounterErr = round4(row.MaxCounterErr)
		rows = append(rows, row)
	}
	if total.WallSecondsSampled > 0 {
		total.Speedup = round2(total.WallSecondsExact / total.WallSecondsSampled)
	}
	fmt.Fprintf(os.Stderr, "albertabench: sampled suite: exact %.2fs   sampled %.2fs   %.2fx   maxerr %.4f\n",
		total.WallSecondsExact, total.WallSecondsSampled, total.Speedup, total.MaxCounterErr)
	total.WallSecondsExact = round2(total.WallSecondsExact)
	total.WallSecondsSampled = round2(total.WallSecondsSampled)
	total.MaxCounterErr = round4(total.MaxCounterErr)
	return total, rows, nil
}

// measurePerBench times one optimized serial characterization of each
// benchmark's measurement workloads, with the allocation delta captured
// around it (a forced GC first, as in runSuite). Minimum wall over
// benchCount passes; allocation profile from the first pass. A non-nil
// only set restricts the sweep to the named benchmarks.
func measurePerBench(benchCount int, only map[string]bool) ([]BenchResult, error) {
	suite, err := benchmarks.Suite()
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	var rows []BenchResult
	for _, b := range suite.Benchmarks() {
		if only != nil && !only[b.Name()] {
			continue
		}
		ws, err := core.MeasurementWorkloads(b)
		if err != nil {
			return nil, err
		}
		row := BenchResult{Name: b.Name(), WallSeconds: math.Inf(1)}
		for pass := 0; pass < benchCount; pass++ {
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			for _, w := range ws {
				if _, err := harness.RunWorkload(ctx, b, w, harness.Options{Reps: 1, Stride: 1}); err != nil {
					return nil, err
				}
			}
			wall := time.Since(start).Seconds()
			runtime.ReadMemStats(&after)
			row.WallSeconds = math.Min(row.WallSeconds, wall)
			if pass == 0 {
				row.Allocs = after.Mallocs - before.Mallocs
				row.Bytes = after.TotalAlloc - before.TotalAlloc
			}
		}
		row.WallSeconds = round2(row.WallSeconds)
		fmt.Fprintf(os.Stderr, "albertabench: per_bench %-18s %6.2fs   %d allocs / %d bytes\n",
			row.Name, row.WallSeconds, row.Allocs, row.Bytes)
		rows = append(rows, row)
	}
	return rows, nil
}

func main() {
	out := flag.String("out", "", "write the baseline JSON to this file (stdout when empty)")
	microOnly := flag.Bool("micro", false, "skip the full-suite wall-clock comparison")
	suiteCount := flag.Int("suitecount", 3, "suite timing passes per path; the minimum is recorded")
	workers := flag.Int("workers", 0, "worker count for the parallel suite row (0 = GOMAXPROCS; explicit values below 2 are an error)")
	sampledOnly := flag.Bool("sampled", false, "measure only the exact-vs-sampled comparison rows (suite + per benchmark)")
	check := flag.String("check", "", "re-run the microbenchmarks and compare against this baseline JSON (warn-only)")
	budget := flag.String("budget", "", "re-time selected benchmarks and compare against this baseline's per_bench rows (warn-only)")
	benches := flag.String("benches", "500.perlbench_r,502.gcc_r", "comma-separated benchmark names for -budget")
	tol := flag.Float64("tol", 0.5, "relative tolerance band for -check/-budget (0.5 = ±50%)")
	flag.Parse()

	var err error
	switch {
	case *check != "":
		err = runCheck(*check, *tol)
	case *budget != "":
		err = runBudget(*budget, *tol, *benches)
	case *sampledOnly:
		err = runSampledOnly(*out)
	default:
		err = run(*out, *microOnly, *suiteCount, *workers)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "albertabench:", err)
		os.Exit(1)
	}
}

// measureMicros times the microbenchmark set on both paths.
func measureMicros() []MicroResult {
	var out []MicroResult
	for _, mb := range micros {
		opt := measure(mb, false)
		ref := measure(mb, true)
		out = append(out, MicroResult{
			Name:       mb.name,
			NsPerOpOpt: round2(opt),
			NsPerOpRef: round2(ref),
			Speedup:    round2(ref / opt),
		})
		fmt.Fprintf(os.Stderr, "albertabench: %-12s opt %8.2f ns/op   ref %8.2f ns/op   %.2fx\n",
			mb.name, opt, ref, ref/opt)
	}
	return out
}

func run(out string, microOnly bool, suiteCount, workers int) error {
	// A "parallel" row with one worker is a serial run wearing the wrong
	// label — an explicit request for it is an error, and a 1-CPU machine
	// omits the row instead of recording it.
	if workers != 0 && workers < 2 {
		return fmt.Errorf("-workers %d: a parallel suite row needs at least 2 workers", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	base := Baseline{Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	base.Micro = measureMicros()

	if !microOnly {
		// Alternate opt/ref passes and keep the per-path minimum: wall-clock
		// noise only ever inflates a measurement, so the minimum is the
		// noise-robust estimator, and interleaving decorrelates slow drift
		// (thermal, co-tenant load) from the opt/ref comparison.
		var err error
		if base.Suite, err = measureSuite(1, suiteCount); err != nil {
			return err
		}
		if workers >= 2 {
			if base.SuiteParallel, err = measureSuite(workers, suiteCount); err != nil {
				return err
			}
		} else {
			fmt.Fprintln(os.Stderr, "albertabench: 1-CPU machine: omitting the parallel suite row")
		}
		if base.SuiteSampled, base.PerBenchSampled, err = measureSampled(); err != nil {
			return err
		}
		if base.PerBench, err = measurePerBench(2, nil); err != nil {
			return err
		}
	}

	return writeBaseline(base, out)
}

// writeBaseline serializes a baseline to out, or stdout when out is empty.
func writeBaseline(base Baseline, out string) error {
	doc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(out, doc, 0o644)
}

// runSampledOnly writes a baseline holding only the sampled comparison
// rows — the cheap artifact CI publishes on every run, next to the full
// committed baseline that `make bench` regenerates.
func runSampledOnly(out string) error {
	base := Baseline{Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	var err error
	if base.SuiteSampled, base.PerBenchSampled, err = measureSampled(); err != nil {
		return err
	}
	return writeBaseline(base, out)
}

// runCheck re-times the microbenchmarks and compares them against the
// committed baseline within a relative tolerance band. It never fails the
// build on a timing deviation — wall-clock on shared CI runners is too noisy
// for a hard gate — it only warns, so regressions are visible in the log
// while `make bench` remains the tool that re-records the baseline.
// Structural drift (a micro added or removed without regenerating the
// baseline) is a real error.
func runCheck(path string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	recorded := map[string]MicroResult{}
	for _, m := range base.Micro {
		recorded[m.Name] = m
	}
	fresh := measureMicros()
	if len(fresh) != len(base.Micro) {
		return fmt.Errorf("baseline %s has %d micros, binary has %d: regenerate with make bench", path, len(base.Micro), len(fresh))
	}
	warns := 0
	for _, f := range fresh {
		r, ok := recorded[f.Name]
		if !ok {
			return fmt.Errorf("micro %q missing from baseline %s: regenerate with make bench", f.Name, path)
		}
		for _, c := range []struct {
			field    string
			old, new float64
		}{
			{"opt", r.NsPerOpOpt, f.NsPerOpOpt},
			{"ref", r.NsPerOpRef, f.NsPerOpRef},
		} {
			if c.old <= 0 {
				continue
			}
			if dev := c.new/c.old - 1; dev > tol || dev < -tol {
				warns++
				fmt.Fprintf(os.Stderr, "albertabench: WARN %s/%s drifted %+.0f%% (baseline %.2f ns/op, now %.2f ns/op, band ±%.0f%%)\n",
					f.Name, c.field, dev*100, c.old, c.new, tol*100)
			}
		}
	}
	if warns == 0 {
		fmt.Fprintf(os.Stderr, "albertabench: all %d micros within ±%.0f%% of %s\n", len(fresh), tol*100, path)
	} else {
		fmt.Fprintf(os.Stderr, "albertabench: %d timing(s) outside the band — warn-only; run `make bench` to re-record\n", warns)
	}
	return nil
}

// runBudget re-times the named benchmarks' measurement workloads and
// compares wall clock against the baseline's per_bench rows. Like -check
// it is warn-only for timing — the interpreter-engine budgets (perlbench,
// gcc after bytecode compilation) are asserted visibly without letting CI
// runner noise fail the build — but a requested benchmark missing from the
// baseline is structural drift and a real error.
func runBudget(path string, tol float64, benches string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	recorded := map[string]BenchResult{}
	for _, r := range base.PerBench {
		recorded[r.Name] = r
	}
	only := map[string]bool{}
	for _, name := range strings.Split(benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := recorded[name]; !ok {
			return fmt.Errorf("benchmark %q has no per_bench row in %s: regenerate with make bench", name, path)
		}
		only[name] = true
	}
	if len(only) == 0 {
		return fmt.Errorf("-budget requires at least one benchmark name in -benches")
	}
	fresh, err := measurePerBench(1, only)
	if err != nil {
		return err
	}
	warns := 0
	for _, f := range fresh {
		r := recorded[f.Name]
		if r.WallSeconds <= 0 {
			continue
		}
		if dev := f.WallSeconds/r.WallSeconds - 1; dev > tol {
			warns++
			fmt.Fprintf(os.Stderr, "albertabench: WARN %s over budget %+.0f%% (baseline %.2fs, now %.2fs, band +%.0f%%)\n",
				f.Name, dev*100, r.WallSeconds, f.WallSeconds, tol*100)
		}
	}
	if warns == 0 {
		fmt.Fprintf(os.Stderr, "albertabench: all %d benchmark(s) within +%.0f%% of %s budgets\n", len(fresh), tol*100, path)
	} else {
		fmt.Fprintf(os.Stderr, "albertabench: %d benchmark(s) over budget — warn-only; run `make bench` to re-record\n", warns)
	}
	return nil
}

// round2 keeps the committed baseline diffable: two decimals are plenty for
// ns/op and seconds alike.
func round2(v float64) float64 {
	if v < 0 {
		return -round2(-v)
	}
	return float64(int64(v*100+0.5)) / 100
}

// round4 is round2 at error-column resolution: relative errors live well
// below 1%, where two decimals would round them to zero.
func round4(v float64) float64 {
	if v < 0 {
		return -round4(-v)
	}
	return float64(int64(v*10000+0.5)) / 10000
}
