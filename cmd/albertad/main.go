// Command albertad is the characterization service: a long-running HTTP
// daemon that runs the benchmark × workload matrix on demand and serves
// the results through the versioned report.Suite envelope — the same
// schema_version 1 document `albertarun -json` emits.
//
//	albertad -addr :8080 -parallel 4 -jobs 1 -queue 16
//	albertad -addr :8081 -worker                      # worker daemon
//	albertad -addr :8080 -workers http://h1:8081,http://h2:8081
//
// API (all JSON unless noted):
//
//	POST   /v1/jobs               submit a characterization request
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job status
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET    /v1/jobs/{id}/result   the report.Suite envelope (409 until done)
//	GET    /v1/jobs/{id}/events   SSE progress stream
//	GET    /v1/benchmarks         benchmark and workload inventory
//	POST   /v1/cells:execute      run one matrix cell (worker protocol)
//	GET    /v1/cache              cell-cache introspection
//	DELETE /v1/cache              flush resolved cells
//	GET    /metrics               job/cell/allocation counters
//	GET    /healthz               liveness (reports draining)
//
// Results are cached per cell — one (benchmark × workload × normalized
// config) point of the matrix — with single-flight deduplication, so
// overlapping requests share executions and a repeat request re-runs
// nothing. With -workers the daemon coordinates: cold cells are sharded
// across the listed worker daemons (started with -worker) and merged into
// an envelope byte-identical to a single-node run. SIGTERM/SIGINT
// triggers a graceful drain: new submissions answer 503 while queued and
// in-flight jobs run to completion, then the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/benchmarks"
	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		parallel = flag.Int("parallel", 1, "concurrent local cell executions (server-wide)")
		jobs     = flag.Int("jobs", 1, "jobs run concurrently")
		queue    = flag.Int("queue", 16, "queued-job bound (full queue answers 503)")
		workers  = flag.String("workers", "", "comma-separated worker base URLs; enables coordinator sharding")
		worker   = flag.Bool("worker", false, "serve only the worker surface (cells:execute, cache, metrics)")
		fanout   = flag.Int("fanout", 0, "concurrent remote cell executions (default 2 per worker)")
	)
	flag.Parse()
	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if err := run(*addr, *parallel, *jobs, *queue, *fanout, urls, *worker); err != nil {
		fmt.Fprintln(os.Stderr, "albertad:", err)
		os.Exit(1)
	}
}

func run(addr string, parallel, jobs, queue, fanout int, workers []string, workerOnly bool) error {
	if workerOnly && len(workers) > 0 {
		return errors.New("-worker and -workers are mutually exclusive (workers never forward)")
	}
	suite, err := benchmarks.CharacterizedSuite()
	if err != nil {
		return err
	}
	srv, err := service.NewServer(service.Config{
		Suite:        suite,
		JobWorkers:   jobs,
		RunWorkers:   parallel,
		QueueDepth:   queue,
		Workers:      workers,
		RemoteFanout: fanout,
		WorkerOnly:   workerOnly,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		mode := "serving"
		switch {
		case workerOnly:
			mode = "worker, serving"
		case len(workers) > 0:
			mode = fmt.Sprintf("coordinating %d workers, serving", len(workers))
		}
		fmt.Fprintf(os.Stderr, "albertad: %s on %s\n", mode, addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	// Graceful drain: finish queued and running jobs, then close the
	// listener (SSE streams end when their jobs reach terminal states).
	fmt.Fprintln(os.Stderr, "albertad: draining")
	srv.Drain()
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "albertad: drained, exiting")
	return nil
}
