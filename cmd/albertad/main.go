// Command albertad is the characterization service: a long-running HTTP
// daemon that runs the benchmark × workload matrix on demand and serves
// the results through the versioned report.Suite envelope — the same
// schema_version 1 document `albertarun -json` emits.
//
//	albertad -addr :8080 -parallel 4 -jobs 1 -queue 16
//
// API (all JSON unless noted):
//
//	POST   /v1/jobs               submit a characterization request
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job status
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET    /v1/jobs/{id}/result   the report.Suite envelope (409 until done)
//	GET    /v1/jobs/{id}/events   SSE progress stream
//	GET    /v1/benchmarks         benchmark and workload inventory
//	GET    /metrics               job/cache/allocation counters
//	GET    /healthz               liveness (reports draining)
//
// Repeated requests are served from a content-keyed result cache
// byte-identically without re-running any benchmark. SIGTERM/SIGINT
// triggers a graceful drain: new submissions answer 503 while queued and
// in-flight jobs run to completion, then the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/benchmarks"
	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		parallel = flag.Int("parallel", 1, "harness measurement workers per job")
		jobs     = flag.Int("jobs", 1, "jobs run concurrently")
		queue    = flag.Int("queue", 16, "queued-job bound (full queue answers 503)")
	)
	flag.Parse()
	if err := run(*addr, *parallel, *jobs, *queue); err != nil {
		fmt.Fprintln(os.Stderr, "albertad:", err)
		os.Exit(1)
	}
}

func run(addr string, parallel, jobs, queue int) error {
	suite, err := benchmarks.CharacterizedSuite()
	if err != nil {
		return err
	}
	srv, err := service.NewServer(service.Config{
		Suite:      suite,
		JobWorkers: jobs,
		RunWorkers: parallel,
		QueueDepth: queue,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "albertad: listening on %s\n", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	// Graceful drain: finish queued and running jobs, then close the
	// listener (SSE streams end when their jobs reach terminal states).
	fmt.Fprintln(os.Stderr, "albertad: draining")
	srv.Drain()
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "albertad: drained, exiting")
	return nil
}
