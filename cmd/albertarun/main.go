// Command albertarun runs the characterization experiments and regenerates
// the paper's tables and figures:
//
//	albertarun -table1          # Table I: 2006→2017 evolution + modeled times
//	albertarun -table2          # Table II: workload-sensitivity summary
//	albertarun -fig1            # Figure 1 data: top-down per workload
//	albertarun -fig2            # Figure 2 data: method coverage per workload
//	albertarun -fdo             # FDO cross-validation study
//	albertarun -bench 557.xz_r  # restrict to one benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchmarks"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fdo"
	"repro/internal/harness"
	"repro/internal/optstudy"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "reproduce Table I")
		table2   = flag.Bool("table2", false, "reproduce Table II")
		fig1     = flag.Bool("fig1", false, "emit Figure 1 data (xalancbmk vs xz)")
		fig2     = flag.Bool("fig2", false, "emit Figure 2 data (deepsjeng vs xz)")
		fdoRun   = flag.Bool("fdo", false, "run the FDO cross-validation study")
		clusterK = flag.Int("cluster", 0, "cluster each benchmark's workloads into k groups (Berube workload reduction)")
		optStudy = flag.Bool("optstudy", false, "run the optimization-level variation study")
		report   = flag.Bool("report", false, "emit the per-benchmark report (execution time bars, top-down, hot methods)")
		kernels  = flag.Bool("kernels", false, "rank benchmarks by how poorly a single-workload kernel represents them")
		bench    = flag.String("bench", "", "restrict to one benchmark (e.g. 505.mcf_r)")
		reps     = flag.Int("reps", 3, "repetitions per workload (paper: 3)")
		stride   = flag.Int("stride", 1, "profiler event sampling stride (1 = exact)")
		listAll  = flag.Bool("list", false, "list benchmarks and workload inventories")
	)
	flag.Parse()

	if err := run(*table1, *table2, *fig1, *fig2, *fdoRun, *listAll, *bench, *reps, *stride, *clusterK, *optStudy, *report, *kernels); err != nil {
		fmt.Fprintln(os.Stderr, "albertarun:", err)
		os.Exit(1)
	}
}

func run(table1, table2, fig1, fig2, fdoRun, listAll bool, bench string, reps, stride, clusterK int, optStudy, report, kernels bool) error {
	if !table1 && !table2 && !fig1 && !fig2 && !fdoRun && !listAll && clusterK == 0 && !optStudy && !report && !kernels {
		table2 = true // default action
	}
	opts := harness.Options{Reps: reps, Stride: stride}

	suite, err := benchmarks.CharacterizedSuite()
	if err != nil {
		return err
	}
	if listAll {
		full, err := benchmarks.Suite()
		if err != nil {
			return err
		}
		for _, b := range full.Benchmarks() {
			ws, err := b.Workloads()
			if err != nil {
				return err
			}
			counts := map[core.Kind]int{}
			for _, w := range ws {
				counts[w.WorkloadKind()]++
			}
			fmt.Printf("%-18s %-34s train=%d refrate=%d alberta=%d\n",
				b.Name(), b.Area(), counts[core.KindTrain], counts[core.KindRefrate], counts[core.KindAlberta])
		}
		return nil
	}
	if fdoRun {
		for _, p := range fdo.StudyPrograms() {
			cv, err := fdo.CrossValidate(p)
			if err != nil {
				return err
			}
			fmt.Print(fdo.FormatCrossValidation(cv))
			fmt.Println()
		}
		return nil
	}
	if optStudy {
		rows, err := optstudy.Run(fdo.StudyPrograms())
		if err != nil {
			return err
		}
		fmt.Print(optstudy.Format(rows))
		return nil
	}

	if bench != "" {
		b, ok := suite.Lookup(bench)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (try -list)", bench)
		}
		suite, err = core.NewSuite(b)
		if err != nil {
			return err
		}
	}

	results, err := harness.RunSuite(suite, opts)
	if err != nil {
		return err
	}
	if kernels {
		rows, err := harness.KernelRepresentativeness(results)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatKernelRows(rows))
		return nil
	}
	if report {
		for _, name := range results.SortedBenchmarks() {
			fmt.Println(harness.BenchmarkReport(name, results[name]))
		}
		return nil
	}
	if clusterK > 0 {
		for _, name := range results.SortedBenchmarks() {
			ms := results[name]
			k := clusterK
			if k > len(ms) {
				k = len(ms)
			}
			reps, cl, err := cluster.Representatives(ms, k)
			if err != nil {
				return err
			}
			fmt.Print(cluster.FormatClustering(name, ms, cl, reps))
		}
		return nil
	}
	if table1 {
		fmt.Print(harness.FormatTableI(harness.TableI(results)))
		fmt.Println()
	}
	if table2 {
		rows, err := harness.TableII(results)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatTableII(rows))
	}
	if fig1 {
		series, err := harness.Figure1(results, pick(results, bench, "523.xalancbmk_r", "557.xz_r")...)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatFigure1(series))
	}
	if fig2 {
		series, err := harness.Figure2(results, 6, pick(results, bench, "531.deepsjeng_r", "557.xz_r")...)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatFigure2(series))
	}
	return nil
}

// pick returns the figure benchmarks, honoring a -bench restriction.
func pick(results harness.SuiteResults, bench string, defaults ...string) []string {
	if bench != "" {
		return []string{bench}
	}
	var out []string
	for _, d := range defaults {
		if _, ok := results[d]; ok {
			out = append(out, d)
		}
	}
	return out
}
