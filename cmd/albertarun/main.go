// Command albertarun runs the characterization experiments and regenerates
// the paper's tables and figures:
//
//	albertarun -table1          # Table I: 2006→2017 evolution + modeled times
//	albertarun -table2          # Table II: workload-sensitivity summary
//	albertarun -fig1            # Figure 1 data: top-down per workload
//	albertarun -fig2            # Figure 2 data: method coverage per workload
//	albertarun -fdo             # FDO cross-validation study
//	albertarun -bench 557.xz_r  # restrict to one benchmark
//	albertarun -parallel 8      # bound the measurement worker pool
//	albertarun -table2 -json    # versioned report.Suite envelope on stdout
//	albertarun -reference       # retained pre-optimization event path
//	albertarun -cpuprofile cpu.pprof -memprofile mem.pprof
//	                            # pprof profiles of the run itself
//	albertarun -memstats        # allocation totals of the run on stderr
//
// With -json, the selected modes are emitted together as one
// report.Suite envelope (schema_version 1) — the same document the
// albertad service serves — with the raw measurements always included.
//
// A SIGINT cancels the run: outstanding measurements are abandoned and the
// command exits with the context error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	"repro/internal/benchmarks"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fdo"
	"repro/internal/harness"
	"repro/internal/harness/report"
	"repro/internal/optstudy"
)

// config carries every flag once; experiment funcs take it instead of a
// positional-argument list, so adding a mode no longer changes call sites.
type config struct {
	bench      string
	reps       int
	stride     int
	parallel   int
	failFast   bool
	jsonOut    bool
	verbose    bool
	clusterK   int
	reference  bool
	sampled    bool
	interval   uint64
	phases     int
	cpuProfile string
	memProfile string
	memStats   bool

	// opts is the normalized option set shared by every mode; run() fills
	// it once via harness.Options.Normalize, the single place defaults
	// and validation live.
	opts harness.Options

	// results and sorted cache the suite run and its benchmark name order
	// so that several characterization modes requested together (e.g.
	// -table1 -table2 -fig1) share one run and one sort.
	results report.Results
	sorted  []string
}

// options assembles the raw (unnormalized) harness options from flags.
func (c *config) options() harness.Options {
	opts := harness.Options{
		Reps:            c.reps,
		Stride:          c.stride,
		Workers:         c.parallel,
		FailFast:        c.failFast,
		Reference:       c.reference,
		Sampled:         c.sampled,
		SampledInterval: c.interval,
		SampledPhases:   c.phases,
	}
	if c.verbose {
		opts.Progress = func(e harness.Event) {
			switch e.Kind {
			case harness.EventWorkloadDone:
				fmt.Fprintf(os.Stderr, "albertarun: [%d/%d] %s/%s\n",
					e.Completed, e.Total, e.Benchmark, e.Workload)
			case harness.EventWorkloadError:
				fmt.Fprintf(os.Stderr, "albertarun: [%d/%d] %s/%s FAILED: %v\n",
					e.Completed, e.Total, e.Benchmark, e.Workload, e.Err)
			}
		}
	}
	return opts
}

// suiteResults runs the characterization matrix once per invocation and
// caches it (and its sorted benchmark order) for subsequent modes.
func (c *config) suiteResults(ctx context.Context, suite *core.Suite) (report.Results, error) {
	if c.results == nil {
		res, err := harness.NewRunner(suite, c.opts).Run(ctx)
		if err != nil {
			return nil, err
		}
		c.results = res
		c.sorted = res.SortedBenchmarks()
	}
	return c.results, nil
}

// mode is one experiment: a flag name and its implementation. Modes run in
// table order; several may be selected in one invocation.
type mode struct {
	name string
	help string
	run  func(ctx context.Context, cfg *config, suite *core.Suite) error
	// section, when non-nil, marks the mode's section in the report.Suite
	// envelope; -json runs select their sections instead of calling run.
	// Modes without a section are inherently textual and reject -json.
	section func(*report.Sections)
}

var modes = []mode{
	{name: "list", help: "list benchmarks and workload inventories", run: runList},
	{name: "fdo", help: "run the FDO cross-validation study", run: runFDO},
	{name: "optstudy", help: "run the optimization-level variation study", run: runOptStudy},
	{name: "kernels", help: "rank benchmarks by how poorly a single-workload kernel represents them",
		run: runKernels, section: func(s *report.Sections) { s.Kernels = true }},
	{name: "report", help: "emit the per-benchmark report (execution time bars, top-down, hot methods)", run: runReport},
	{name: "table1", help: "reproduce Table I",
		run: runTable1, section: func(s *report.Sections) { s.Table1 = true }},
	{name: "table2", help: "reproduce Table II",
		run: runTable2, section: func(s *report.Sections) { s.Table2 = true }},
	{name: "fig1", help: "emit Figure 1 data (xalancbmk vs xz)",
		run: runFig1, section: func(s *report.Sections) { s.Figure1 = true }},
	{name: "fig2", help: "emit Figure 2 data (deepsjeng vs xz)",
		run: runFig2, section: func(s *report.Sections) { s.Figure2 = true }},
}

func main() {
	cfg := &config{}
	selected := make(map[string]*bool, len(modes))
	for _, m := range modes {
		selected[m.name] = flag.Bool(m.name, false, m.help)
	}
	def := harness.DefaultOptions()
	flag.IntVar(&cfg.clusterK, "cluster", 0, "cluster each benchmark's workloads into k groups (Berube workload reduction)")
	flag.StringVar(&cfg.bench, "bench", "", "restrict to one benchmark (e.g. 505.mcf_r)")
	flag.IntVar(&cfg.reps, "reps", def.Reps, "repetitions per workload (paper: 3)")
	flag.IntVar(&cfg.stride, "stride", def.Stride, "profiler event sampling stride (1 = exact)")
	flag.IntVar(&cfg.parallel, "parallel", runtime.GOMAXPROCS(0), "measurement worker pool size (1 = serial)")
	flag.BoolVar(&cfg.failFast, "failfast", false, "abort the whole run on the first measurement error")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit one versioned report.Suite envelope (schema_version 1) instead of text")
	flag.BoolVar(&cfg.verbose, "v", false, "report per-workload progress on stderr")
	flag.BoolVar(&cfg.reference, "reference", false, "run the retained pre-optimization profiler event path (bit-identical results, slower)")
	flag.BoolVar(&cfg.sampled, "sampled", false, "phase-sampled simulation: cluster BBV intervals, simulate representatives, extrapolate probe counters")
	flag.Uint64Var(&cfg.interval, "interval", 0, "sampled-mode profiling interval in retired ops (0 = default)")
	flag.IntVar(&cfg.phases, "phases", 0, "sampled-mode phase cluster count k (0 = default)")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile at exit to this file")
	flag.BoolVar(&cfg.memStats, "memstats", false, "print the run's allocation totals (allocs, bytes, GC cycles) on stderr at exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "albertarun:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "albertarun:", err)
			os.Exit(1)
		}
	}

	var before runtime.MemStats
	if cfg.memStats {
		runtime.ReadMemStats(&before)
	}

	err := run(ctx, cfg, selected)

	if cfg.cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if cfg.memStats {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		fmt.Fprintf(os.Stderr, "albertarun: allocs=%d bytes=%d gc_cycles=%d\n",
			after.Mallocs-before.Mallocs, after.TotalAlloc-before.TotalAlloc, after.NumGC-before.NumGC)
	}
	if cfg.memProfile != "" {
		if werr := writeMemProfile(cfg.memProfile); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "albertarun:", err)
		os.Exit(1)
	}
}

// writeMemProfile captures the heap at exit, after a GC so the profile
// reflects live objects rather than collection timing.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func run(ctx context.Context, cfg *config, selected map[string]*bool) error {
	var err error
	if cfg.opts, err = cfg.options().Normalize(); err != nil {
		return err
	}

	var active []mode
	for _, m := range modes {
		if *selected[m.name] {
			active = append(active, m)
		}
	}
	if cfg.clusterK > 0 {
		active = append(active, mode{name: "cluster", run: runCluster})
	}
	if len(active) == 0 {
		active = []mode{{name: "table2", run: runTable2,
			section: func(s *report.Sections) { s.Table2 = true }}} // default action
	}

	suite, err := benchmarks.CharacterizedSuite()
	if err != nil {
		return err
	}
	if cfg.bench != "" {
		b, ok := suite.Lookup(cfg.bench)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (try -list)", cfg.bench)
		}
		if suite, err = core.NewSuite(b); err != nil {
			return err
		}
	}

	if cfg.jsonOut {
		return runEnvelope(ctx, cfg, suite, active)
	}
	for _, m := range active {
		if err := m.run(ctx, cfg, suite); err != nil {
			return fmt.Errorf("-%s: %w", m.name, err)
		}
	}
	return nil
}

// runEnvelope is the -json path: the selected modes become sections of a
// single report.Suite envelope — the same schema_version 1 document the
// albertad service serves — with the raw measurements always included.
func runEnvelope(ctx context.Context, cfg *config, suite *core.Suite, active []mode) error {
	sections := report.Sections{Measurements: true}
	for _, m := range active {
		if m.section == nil {
			return fmt.Errorf("mode -%s has no JSON form", m.name)
		}
		m.section(&sections)
	}
	results, err := cfg.suiteResults(ctx, suite)
	if err != nil {
		return err
	}
	env, err := report.Build(results, cfg.opts.ReportConfig(), report.BuildOptions{
		Sections:          sections,
		Figure1Benchmarks: pick(results, cfg.bench, "523.xalancbmk_r", "557.xz_r"),
		Figure2Benchmarks: pick(results, cfg.bench, "531.deepsjeng_r", "557.xz_r"),
	})
	if err != nil {
		return err
	}
	data, err := env.Encode()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

func runList(ctx context.Context, cfg *config, suite *core.Suite) error {
	full, err := benchmarks.Suite()
	if err != nil {
		return err
	}
	for _, b := range full.Benchmarks() {
		ws, err := b.Workloads()
		if err != nil {
			return err
		}
		counts := map[core.Kind]int{}
		for _, w := range ws {
			counts[w.WorkloadKind()]++
		}
		fmt.Printf("%-18s %-34s train=%d refrate=%d alberta=%d\n",
			b.Name(), b.Area(), counts[core.KindTrain], counts[core.KindRefrate], counts[core.KindAlberta])
	}
	return nil
}

func runFDO(ctx context.Context, cfg *config, suite *core.Suite) error {
	for _, p := range fdo.StudyPrograms() {
		cv, err := fdo.CrossValidate(p)
		if err != nil {
			return err
		}
		fmt.Print(fdo.FormatCrossValidation(cv))
		fmt.Println()
	}
	return nil
}

func runOptStudy(ctx context.Context, cfg *config, suite *core.Suite) error {
	rows, err := optstudy.Run(fdo.StudyPrograms())
	if err != nil {
		return err
	}
	fmt.Print(optstudy.Format(rows))
	return nil
}

func runKernels(ctx context.Context, cfg *config, suite *core.Suite) error {
	results, err := cfg.suiteResults(ctx, suite)
	if err != nil {
		return err
	}
	rows, err := report.Kernels(results, cfg.sorted)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatKernelRows(rows))
	return nil
}

func runReport(ctx context.Context, cfg *config, suite *core.Suite) error {
	results, err := cfg.suiteResults(ctx, suite)
	if err != nil {
		return err
	}
	for _, name := range cfg.sorted {
		fmt.Println(report.BenchmarkReport(name, results[name]))
	}
	return nil
}

func runCluster(ctx context.Context, cfg *config, suite *core.Suite) error {
	results, err := cfg.suiteResults(ctx, suite)
	if err != nil {
		return err
	}
	for _, name := range cfg.sorted {
		ms := results[name]
		k := cfg.clusterK
		if k > len(ms) {
			k = len(ms)
		}
		sel, err := cluster.Select(ms, cluster.Options{K: k})
		if err != nil {
			return err
		}
		fmt.Print(cluster.FormatSelection(name, sel))
	}
	return nil
}

func runTable1(ctx context.Context, cfg *config, suite *core.Suite) error {
	results, err := cfg.suiteResults(ctx, suite)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatTableI(report.TableI(results)))
	fmt.Println()
	return nil
}

func runTable2(ctx context.Context, cfg *config, suite *core.Suite) error {
	results, err := cfg.suiteResults(ctx, suite)
	if err != nil {
		return err
	}
	rows, err := report.TableII(results, cfg.sorted)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatTableII(rows))
	return nil
}

func runFig1(ctx context.Context, cfg *config, suite *core.Suite) error {
	results, err := cfg.suiteResults(ctx, suite)
	if err != nil {
		return err
	}
	series, err := report.Figure1(results, pick(results, cfg.bench, "523.xalancbmk_r", "557.xz_r")...)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatFigure1(series))
	return nil
}

func runFig2(ctx context.Context, cfg *config, suite *core.Suite) error {
	results, err := cfg.suiteResults(ctx, suite)
	if err != nil {
		return err
	}
	series, err := report.Figure2(results, 6, pick(results, cfg.bench, "531.deepsjeng_r", "557.xz_r")...)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatFigure2(series))
	return nil
}

// pick returns the figure benchmarks, honoring a -bench restriction.
func pick(results report.Results, bench string, defaults ...string) []string {
	if bench != "" {
		return []string{bench}
	}
	var out []string
	for _, d := range defaults {
		if _, ok := results[d]; ok {
			out = append(out, d)
		}
	}
	return out
}
