// Command albertasweep runs workload-space sweeps: it mints N generated
// workloads per benchmark (Section IV's "as many as you need"), streams
// every cell through the parallel harness without retaining measurements,
// clusters the behaviour vectors, and selects the representative few with
// a quantified per-benchmark coverage loss.
//
//	albertasweep -n 100 -k 5                  # sweep every generator-capable benchmark
//	albertasweep -benches 505.mcf_r,557.xz_r  # restrict the sweep
//	albertasweep -features topdown            # O(1)-per-cell embedding
//	albertasweep -json                        # machine-readable sweep report
//	albertasweep -fdo                         # add the FDO hidden-learning study
//	                                          # over cluster-selected training sets
//
// The selection is deterministic: the same seed, plan and feature space
// select the same representatives regardless of -parallel, and the
// albertad service's POST /v1/sweeps path reports the identical reduction
// for the same request (both run internal/sweep).
//
// A SIGINT cancels the sweep: outstanding cells are abandoned and the
// command exits with the context error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"repro/internal/benchmarks"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fdo"
	"repro/internal/harness"
	"repro/internal/harness/report"
	"repro/internal/sweep"
)

// config carries every flag once; the sweep stages take it instead of a
// positional-argument list (the albertarun pattern).
type config struct {
	benches     string
	n           int
	seed        int64
	k           int
	features    string
	clusterSeed int64
	reps        int
	stride      int
	parallel    int
	jsonOut     bool
	verbose     bool
	fdoStudy    bool

	// normalized state filled by run():
	swcfg sweep.Config
	opts  harness.Options
}

func main() {
	cfg := &config{}
	def := harness.DefaultOptions()
	flag.StringVar(&cfg.benches, "benches", "", "comma-separated benchmarks to sweep (default: every generator-capable benchmark)")
	flag.IntVar(&cfg.n, "n", 16, "generated workloads per benchmark")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload generator seed")
	flag.IntVar(&cfg.k, "k", 3, "representatives to keep per benchmark")
	flag.StringVar(&cfg.features, "features", "combined", "cluster feature space: combined, topdown or coverage")
	flag.Int64Var(&cfg.clusterSeed, "cluster-seed", 0, "k-medoids initialization seed (0 = canonical)")
	flag.IntVar(&cfg.reps, "reps", def.Reps, "repetitions per workload")
	flag.IntVar(&cfg.stride, "stride", def.Stride, "profiler event sampling stride (1 = exact)")
	flag.IntVar(&cfg.parallel, "parallel", runtime.GOMAXPROCS(0), "measurement worker pool size (1 = serial)")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the sweep report as JSON instead of text")
	flag.BoolVar(&cfg.verbose, "v", false, "report per-cell progress on stderr")
	flag.BoolVar(&cfg.fdoStudy, "fdo", false, "also run the FDO hidden-learning study on cluster-selected training sets (-n inputs, -k representatives)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "albertasweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg *config) error {
	feats, err := cluster.ParseFeatures(cfg.features)
	if err != nil {
		return err
	}
	suite, err := benchmarks.Suite()
	if err != nil {
		return err
	}
	var names []string
	if cfg.benches != "" {
		names = strings.Split(cfg.benches, ",")
	}
	cfg.swcfg, err = sweep.Config{
		Benchmarks:   names,
		PerBenchmark: cfg.n,
		Seed:         cfg.seed,
		K:            cfg.k,
		Features:     feats,
		ClusterSeed:  cfg.clusterSeed,
	}.Normalize(suite)
	if err != nil {
		return err
	}
	// A sweep reduction needs every cell, so the first failure aborts the
	// whole run rather than leaving a silently partial workload space.
	opts := harness.Options{Reps: cfg.reps, Stride: cfg.stride, Workers: cfg.parallel, FailFast: true}
	if cfg.verbose {
		opts.Progress = func(e harness.Event) {
			switch e.Kind {
			case harness.EventWorkloadDone:
				fmt.Fprintf(os.Stderr, "albertasweep: [%d/%d] %s/%s\n",
					e.Completed, e.Total, e.Benchmark, e.Workload)
			case harness.EventWorkloadError:
				fmt.Fprintf(os.Stderr, "albertasweep: [%d/%d] %s/%s FAILED: %v\n",
					e.Completed, e.Total, e.Benchmark, e.Workload, e.Err)
			}
		}
	}
	if cfg.opts, err = opts.Normalize(); err != nil {
		return err
	}

	rep, err := runSweep(ctx, cfg, suite)
	if err != nil {
		return err
	}
	if cfg.fdoStudy {
		if rep.FDO, err = runFDO(cfg); err != nil {
			return err
		}
	}

	if cfg.jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	fmt.Print(sweep.Format(rep))
	return nil
}

// runSweep streams the plan through the harness: each completed cell's
// Measurement is compacted into the accumulator and released, so the
// sweep holds O(workers) Measurements however many cells it has.
func runSweep(ctx context.Context, cfg *config, suite *core.Suite) (*sweep.Report, error) {
	units, err := sweep.Plan(suite, cfg.swcfg)
	if err != nil {
		return nil, err
	}
	acc := sweep.NewAccumulator(cfg.swcfg)
	err = harness.NewPlanRunner(units, cfg.opts).Stream(ctx, func(c harness.Cell, m report.Measurement) error {
		acc.Add(c.Index, m)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acc.Report(cfg.opts.ReportConfig())
}

// runFDO runs the at-scale hidden-learning study on every bundled study
// program, training on cluster-selected representative inputs.
func runFDO(cfg *config) ([]fdo.ScaleStudy, error) {
	var out []fdo.ScaleStudy
	for _, p := range fdo.StudyPrograms() {
		st, err := fdo.ScaleCrossValidate(p, fdo.ScaleConfig{
			Seed:        cfg.swcfg.Seed,
			N:           cfg.swcfg.PerBenchmark,
			K:           cfg.swcfg.K,
			Features:    cfg.swcfg.Features,
			ClusterSeed: cfg.swcfg.ClusterSeed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}
