package main

import "repro/internal/lint"

// Minimal SARIF 2.1.0 envelope — enough structure for GitHub code
// scanning and other SARIF consumers: one run, one tool, a rule table,
// and one result per diagnostic with a physical location. File paths are
// module-relative URIs (the tool emits them that way already).

type sarifFile struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifLog assembles the SARIF document: the full rule registry (both
// families plus the stale-suppression meta rule) and every diagnostic as
// an error-level result.
func sarifLog(rules []lint.Rule, progRules []lint.ProgramRule, diags []lint.Diagnostic) sarifFile {
	var table []sarifRule
	for _, r := range rules {
		table = append(table, sarifRule{ID: r.ID(), ShortDescription: sarifMessage{Text: r.Doc()}})
	}
	for _, r := range progRules {
		table = append(table, sarifRule{ID: r.ID(), ShortDescription: sarifMessage{Text: r.Doc()}})
	}
	table = append(table, sarifRule{
		ID:               lint.StaleSuppressionID,
		ShortDescription: sarifMessage{Text: "a //lint:allow comment matches no finding or names an unknown rule"},
	})
	results := []sarifResult{}
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.RuleID,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	return sarifFile{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "albertalint", Rules: table}},
			Results: results,
		}},
	}
}
