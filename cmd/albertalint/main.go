// Command albertalint checks the repository's determinism and harness
// invariants: replayable RNG, no wall-clock reads outside the timing
// packages, no map-iteration-order dependence, single-threaded kernels,
// pure-compute benchmark imports, and no discarded checksum folds.
//
// Usage:
//
//	albertalint [-json] [-rules] [packages ...]
//
// Package patterns are directories relative to the module root; the
// trailing /... wildcard matches recursively, and the default ./... lints
// the whole analyzed surface (internal/benchmarks, internal/harness,
// internal/stats, internal/uarch, internal/fdo — patterns outside the
// surface are ignored). Diagnostics print as
//
//	file:line: rule-id: message
//
// and the exit status is 1 when violations were found, 2 on usage or
// analysis errors, and 0 on a clean tree. A finding is suppressed by a
// `//lint:allow <rule-id> <reason>` comment on the flagged line or the
// line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	listRules := flag.Bool("rules", false, "list rule ids and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: albertalint [-json] [-rules] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	rules := lint.DefaultRules()
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-26s %s\n", r.ID(), r.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	dirs, err := lint.SelectDirs(loader.RepoRoot, patterns)
	if err != nil {
		fatal(err)
	}

	var diags []lint.Diagnostic
	for _, dir := range dirs {
		pass, err := loader.LoadDir(filepath.Join(loader.RepoRoot, dir))
		if err != nil {
			fatal(err)
		}
		if pass == nil {
			continue
		}
		for _, d := range lint.Lint(pass, rules) {
			// Report module-relative paths regardless of where the tool
			// was invoked from.
			if rel, err := filepath.Rel(loader.RepoRoot, d.File); err == nil && !strings.HasPrefix(rel, "..") {
				d.File = filepath.ToSlash(rel)
			}
			diags = append(diags, d)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "albertalint: %d violation(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "albertalint:", err)
	os.Exit(2)
}
