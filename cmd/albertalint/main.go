// Command albertalint checks the repository's determinism and harness
// invariants. Two rule families run:
//
//   - Per-package rules: replayable RNG, no wall-clock reads outside the
//     timing packages, no map-iteration-order dependence, single-threaded
//     kernels, pure-compute benchmark imports, no discarded checksum
//     folds, guardedby field discipline, context-aware goroutines,
//     select-wrapped channel sends, joined workers.
//   - Whole-program rules: interprocedural nondeterminism taint — a wall
//     clock, global RNG, map-iteration order, environment read, or
//     unsynchronized guarded-field read anywhere in the call graph that
//     reaches a report.Measurement/Results/Suite or checksum producer is
//     reported with its full call chain.
//
// Usage:
//
//	albertalint [-format text|json|sarif] [-rules] [packages ...]
//
// Package patterns are directories relative to the module root; the
// trailing /... wildcard matches recursively, and the default ./... lints
// the whole analyzed surface (internal/benchmarks, internal/harness,
// internal/stats, internal/uarch, internal/fdo, internal/service —
// patterns outside the surface are ignored). Whole-program rules and the
// stale-suppression check always analyze the full surface, so a partial
// package selection cannot hide a cross-package taint chain or a dead
// suppression. Text diagnostics print as
//
//	file:line: rule-id: message
//
// and the exit status is 1 when violations were found, 2 on usage or
// analysis errors, and 0 on a clean tree. A finding is suppressed by a
// `//lint:allow <rule-id> <reason>` comment on the flagged line or the
// line above it; a suppression that matches no finding is itself a
// finding (stale-suppression) and cannot be suppressed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	format := flag.String("format", "text", "output format: text, json, or sarif")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (alias for -format json)")
	listRules := flag.Bool("rules", false, "list rule ids and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: albertalint [-format text|json|sarif] [-rules] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fatal(fmt.Errorf("unknown -format %q (want text, json, or sarif)", *format))
	}

	rules := lint.DefaultRules()
	progRules := lint.DefaultProgramRules()
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-26s %s\n", r.ID(), r.Doc())
		}
		for _, r := range progRules {
			fmt.Printf("%-26s %s\n", r.ID(), r.Doc())
		}
		fmt.Printf("%-26s %s\n", lint.StaleSuppressionID,
			"a //lint:allow comment matches no finding or names an unknown rule")
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	selected, err := lint.SelectDirs(loader.RepoRoot, patterns)
	if err != nil {
		fatal(err)
	}
	// Load the full surface once — the taint rule needs the whole call
	// graph even when only a subset of packages is selected for
	// per-package findings, and the shared loader makes the extra
	// packages nearly free (each is type-checked exactly once).
	all, err := lint.SurfaceDirs(loader.RepoRoot)
	if err != nil {
		fatal(err)
	}
	inSelection := map[string]bool{}
	for _, d := range selected {
		inSelection[d] = true
	}
	var surface []*lint.Pass
	for _, dir := range all {
		pass, err := loader.LoadDir(filepath.Join(loader.RepoRoot, dir))
		if err != nil {
			fatal(err)
		}
		if pass != nil && inSelection[dir] {
			surface = append(surface, pass)
		}
	}

	prog := lint.NewProgram(surface...).WithContext(loader.Passes()...)
	var diags []lint.Diagnostic
	for _, d := range prog.Lint(rules, progRules) {
		// Report module-relative paths regardless of where the tool was
		// invoked from.
		if rel, err := filepath.Rel(loader.RepoRoot, d.File); err == nil && !strings.HasPrefix(rel, "..") {
			d.File = filepath.ToSlash(rel)
		}
		diags = append(diags, d)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	case "sarif":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sarifLog(rules, progRules, diags)); err != nil {
			fatal(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if *format == "text" {
			fmt.Fprintf(os.Stderr, "albertalint: %d violation(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "albertalint:", err)
	os.Exit(2)
}
