// Command onefile combines multiple mini-C source files into a single
// compilation unit suitable as a 502.gcc_r workload, reproducing the
// OneFile tool of the Alberta Workloads (static-name mangling, per-file
// preprocessing).
//
//	onefile a.c b.c main.c > combined.c
//	onefile -check a.c b.c main.c   # also compile and run the result
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchmarks/gcc/cc"
	"repro/internal/onefile"
)

func main() {
	check := flag.Bool("check", false, "compile and run the combined unit to validate it")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: onefile [-check] file.c...")
		os.Exit(2)
	}
	if err := run(flag.Args(), *check); err != nil {
		fmt.Fprintln(os.Stderr, "onefile:", err)
		os.Exit(1)
	}
}

func run(paths []string, check bool) error {
	var files []onefile.SourceFile
	for _, path := range paths {
		content, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files = append(files, onefile.SourceFile{Name: path, Content: string(content)})
	}
	combined, err := onefile.Combine(files)
	if err != nil {
		return err
	}
	fmt.Print(combined)
	if check {
		unit, err := cc.CompileSource(combined, cc.O2, nil, nil)
		if err != nil {
			return fmt.Errorf("combined unit does not compile: %w", err)
		}
		res, err := cc.Run(unit, cc.VMOptions{})
		if err != nil {
			return fmt.Errorf("combined unit does not run: %w", err)
		}
		fmt.Fprintf(os.Stderr, "onefile: ok (main returned %d, %d prints)\n", res.Return, res.Printed)
	}
	return nil
}
