// Command albertagen exercises the workload generators: for each benchmark
// that can procedurally create workloads (every one except 500.perlbench_r,
// matching the paper), it generates n fresh workloads from a seed and
// verifies they run.
//
//	albertagen -bench 505.mcf_r -n 5 -seed 42
//	albertagen -all -n 2
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/perf"
)

func main() {
	var (
		bench  = flag.String("bench", "", "benchmark to generate workloads for")
		all    = flag.Bool("all", false, "generate for every generator-capable benchmark")
		n      = flag.Int("n", 3, "workloads to generate")
		seed   = flag.Int64("seed", 1, "generator seed")
		verify = flag.Bool("verify", true, "run each generated workload to verify it")
		outDir = flag.String("out", "", "write workloads with a natural file format to this directory")
	)
	flag.Parse()
	if err := run(*bench, *all, *n, *seed, *verify, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "albertagen:", err)
		os.Exit(1)
	}
}

func run(bench string, all bool, n int, seed int64, verify bool, outDir string) error {
	suite, err := benchmarks.Suite()
	if err != nil {
		return err
	}
	var targets []core.Benchmark
	if all {
		targets = suite.Benchmarks()
	} else if bench != "" {
		b, ok := suite.Lookup(bench)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", bench)
		}
		targets = []core.Benchmark{b}
	} else {
		return fmt.Errorf("pass -bench <name> or -all")
	}

	for _, b := range targets {
		gen, ok := b.(core.Generator)
		if !ok {
			fmt.Printf("%-18s cannot generate workloads (matches the paper: no Alberta workloads)\n", b.Name())
			continue
		}
		ws, err := gen.GenerateWorkloads(seed, n)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name(), err)
		}
		for _, w := range ws {
			line := fmt.Sprintf("%-18s %-12s", b.Name(), w.WorkloadName())
			if verify {
				p := perf.NewWithOptions(perf.Options{Stride: 4})
				res, err := b.Run(w, p)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", b.Name(), w.WorkloadName(), err)
				}
				rep := p.Report()
				line += fmt.Sprintf(" checksum=%016x cycles=%d", res.Checksum, rep.Cycles)
			}
			fmt.Println(line)
			if outDir != "" {
				if err := writeWorkloadFiles(outDir, b, w); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writeWorkloadFiles renders the workload to disk when the benchmark has a
// natural file format (the form the Alberta Workloads site distributes).
func writeWorkloadFiles(outDir string, b core.Benchmark, w core.Workload) error {
	renderer, ok := b.(core.FileRenderer)
	if !ok {
		return nil
	}
	files, err := renderer.RenderWorkload(w)
	if err != nil {
		return err
	}
	dir := filepath.Join(outDir, b.Name(), w.WorkloadName())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("%-18s %-12s wrote %d files to %s\n", b.Name(), w.WorkloadName(), len(files), dir)
	return nil
}
