// Command albertagen exercises the workload generators: for each benchmark
// that can procedurally create workloads (every one except 500.perlbench_r,
// matching the paper), it generates n fresh workloads from a seed and
// verifies they run. Generated names carry their provenance —
// core.GeneratedName(seed, i) — so any consumer can regenerate workload i
// from the name alone.
//
//	albertagen -bench 505.mcf_r -n 5 -seed 42
//	albertagen -all -n 2
//	albertagen -all -json           # versioned generation manifest (implies -verify)
//	albertagen -bench 557.xz_r -out ./workloads
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/harness/report"
	"repro/internal/perf"
)

// config carries every flag once; the generation stages take it instead
// of a positional-argument list (the albertarun pattern).
type config struct {
	bench   string
	all     bool
	n       int
	seed    int64
	verify  bool
	jsonOut bool
	outDir  string
	stride  int
}

func main() {
	cfg := &config{}
	flag.StringVar(&cfg.bench, "bench", "", "benchmark to generate workloads for")
	flag.BoolVar(&cfg.all, "all", false, "generate for every benchmark (non-generators are reported, not failed)")
	flag.IntVar(&cfg.n, "n", 3, "workloads to generate")
	flag.Int64Var(&cfg.seed, "seed", 1, "generator seed")
	flag.BoolVar(&cfg.verify, "verify", true, "run each generated workload to verify it")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit a versioned generation manifest as JSON (implies -verify)")
	flag.StringVar(&cfg.outDir, "out", "", "write workloads with a natural file format to this directory")
	flag.IntVar(&cfg.stride, "stride", 4, "profiler event sampling stride used for verification")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "albertagen:", err)
		os.Exit(1)
	}
}

// Manifest is the machine-readable record of one generation run: enough
// to reproduce it (seed, n) and to check a later regeneration against it
// (each workload's verify checksum). The schema version is the report
// envelope's — the manifest is part of the same versioned surface.
type Manifest struct {
	SchemaVersion int             `json:"schema_version"`
	Seed          int64           `json:"seed"`
	N             int             `json:"n"`
	Benchmarks    []BenchManifest `json:"benchmarks"`
}

// BenchManifest is one benchmark's slice of the manifest. Generator is
// false for benchmarks that cannot generate (500.perlbench_r, matching
// the paper's missing Alberta workloads); their Workloads list is empty.
type BenchManifest struct {
	Benchmark string             `json:"benchmark"`
	Generator bool               `json:"generator"`
	Workloads []WorkloadManifest `json:"workloads,omitempty"`
}

// WorkloadManifest is one generated workload: its provenance-carrying
// name plus, when verified, the execution checksum and modeled cycles —
// the facts a regeneration must reproduce bit-identically.
type WorkloadManifest struct {
	Name     string    `json:"name"`
	Kind     core.Kind `json:"kind"`
	Verified bool      `json:"verified"`
	Checksum uint64    `json:"checksum,omitempty"`
	Cycles   uint64    `json:"cycles,omitempty"`
	// Files is the number of natural-format files written under -out.
	Files int `json:"files,omitempty"`
}

// run resolves the target benchmarks, generates, then dispatches on the
// output mode: JSON manifest or text listing.
func run(cfg *config) error {
	if cfg.n < 1 {
		return fmt.Errorf("-n must be >= 1 (got %d)", cfg.n)
	}
	if cfg.jsonOut {
		cfg.verify = true // a manifest without checksums pins nothing
	}
	suite, err := benchmarks.Suite()
	if err != nil {
		return err
	}
	targets, err := resolveTargets(cfg, suite)
	if err != nil {
		return err
	}
	man, err := generate(cfg, targets)
	if err != nil {
		return err
	}
	if cfg.jsonOut {
		return emitJSON(man)
	}
	return emitText(man)
}

// resolveTargets picks the benchmarks to generate for. -all includes
// non-generators (reported as such); -bench requires one.
func resolveTargets(cfg *config, suite *core.Suite) ([]core.Benchmark, error) {
	if cfg.all {
		return suite.Benchmarks(), nil
	}
	if cfg.bench == "" {
		return nil, fmt.Errorf("pass -bench <name> or -all")
	}
	b, ok := suite.Lookup(cfg.bench)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", cfg.bench)
	}
	return []core.Benchmark{b}, nil
}

// generate mints cfg.n workloads per generator-capable target and fills
// the manifest, verifying and writing files as configured.
func generate(cfg *config, targets []core.Benchmark) (*Manifest, error) {
	man := &Manifest{SchemaVersion: report.SchemaVersion, Seed: cfg.seed, N: cfg.n}
	for _, b := range targets {
		bm := BenchManifest{Benchmark: b.Name()}
		gen, ok := b.(core.Generator)
		if ok {
			bm.Generator = true
			ws, err := gen.GenerateWorkloads(cfg.seed, cfg.n)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name(), err)
			}
			for _, w := range ws {
				wm, err := oneWorkload(cfg, b, w)
				if err != nil {
					return nil, err
				}
				bm.Workloads = append(bm.Workloads, wm)
			}
		}
		man.Benchmarks = append(man.Benchmarks, bm)
	}
	return man, nil
}

// oneWorkload verifies a single generated workload (when asked) and
// writes its natural file format (when asked).
func oneWorkload(cfg *config, b core.Benchmark, w core.Workload) (WorkloadManifest, error) {
	wm := WorkloadManifest{Name: w.WorkloadName(), Kind: w.WorkloadKind()}
	if cfg.verify {
		p := perf.NewWithOptions(perf.Options{Stride: cfg.stride})
		res, err := b.Run(w, p)
		if err != nil {
			return wm, fmt.Errorf("%s/%s: %w", b.Name(), w.WorkloadName(), err)
		}
		wm.Verified = true
		wm.Checksum = res.Checksum
		wm.Cycles = p.Report().Cycles
	}
	if cfg.outDir != "" {
		n, err := writeWorkloadFiles(cfg.outDir, b, w)
		if err != nil {
			return wm, err
		}
		wm.Files = n
	}
	return wm, nil
}

func emitJSON(man *Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(data, '\n'))
	return err
}

func emitText(man *Manifest) error {
	for _, bm := range man.Benchmarks {
		if !bm.Generator {
			fmt.Printf("%-18s cannot generate workloads (matches the paper: no Alberta workloads)\n", bm.Benchmark)
			continue
		}
		for _, wm := range bm.Workloads {
			line := fmt.Sprintf("%-18s %-12s", bm.Benchmark, wm.Name)
			if wm.Verified {
				line += fmt.Sprintf(" checksum=%016x cycles=%d", wm.Checksum, wm.Cycles)
			}
			if wm.Files > 0 {
				line += fmt.Sprintf(" files=%d", wm.Files)
			}
			fmt.Println(line)
		}
	}
	return nil
}

// writeWorkloadFiles renders the workload to disk when the benchmark has a
// natural file format (the form the Alberta Workloads site distributes),
// returning how many files it wrote. File names are written in sorted
// order so repeated runs touch the directory identically.
func writeWorkloadFiles(outDir string, b core.Benchmark, w core.Workload) (int, error) {
	renderer, ok := b.(core.FileRenderer)
	if !ok {
		return 0, nil
	}
	files, err := renderer.RenderWorkload(w)
	if err != nil {
		return 0, err
	}
	dir := filepath.Join(outDir, b.Name(), w.WorkloadName())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(dir, name), files[name], 0o644); err != nil {
			return 0, err
		}
	}
	return len(names), nil
}
