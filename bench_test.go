// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (see DESIGN.md's experiment index):
//
//	BenchmarkTableI                  — SPEC 2006→2017 INT comparison
//	BenchmarkTableII                 — workload-sensitivity summary
//	BenchmarkFigure1                 — top-down per workload (xalancbmk, xz)
//	BenchmarkFigure2                 — method coverage per workload (deepsjeng, xz)
//	BenchmarkAblationLowMeanArtifact — the Section V-B μg(V) inflation
//	BenchmarkAblationCoverageOffset  — the Section V-C offset/threshold choices
//	BenchmarkFDOCrossValidation      — Section VII's FDO methodology study
//	BenchmarkWorkloadClustering      — Berube-style workload reduction [6]
//	BenchmarkOptLevelStudy           — optimization-level variation study
//	BenchmarkSingleWorkloads         — per-benchmark instrumented baselines
//
// Run with: go test -bench=. -benchtime=1x
package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fdo"
	"repro/internal/harness"
	"repro/internal/harness/report"
	"repro/internal/optstudy"
	"repro/internal/stats"
)

// benchOpts keeps regeneration runs affordable: one repetition (the modeled
// measurements are deterministic), moderate event sampling, and the full
// worker pool — results are bit-identical to a serial run except for
// WallSeconds, which no regeneration consumes.
func benchOpts() harness.Options {
	return harness.Options{Reps: 1, Stride: 2, Workers: runtime.GOMAXPROCS(0)}
}

// runSubSuite measures the named benchmarks only.
func runSubSuite(b *testing.B, names ...string) report.Results {
	b.Helper()
	full, err := benchmarks.Suite()
	if err != nil {
		b.Fatal(err)
	}
	var members []core.Benchmark
	for _, n := range names {
		bench, ok := full.Lookup(n)
		if !ok {
			b.Fatalf("unknown benchmark %s", n)
		}
		members = append(members, bench)
	}
	sub, err := core.NewSuite(members...)
	if err != nil {
		b.Fatal(err)
	}
	res, err := harness.RunSuite(context.Background(), sub, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTableI regenerates Table I: the published 2006/2017 columns next
// to this reproduction's modeled refrate times for the INT suite.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var names []string
		for _, e := range report.PaperTableI {
			names = append(names, e.Name2017)
		}
		results := runSubSuite(b, names...)
		rows := report.TableI(results)
		if i == 0 {
			fmt.Println(report.FormatTableI(rows))
			var sum float64
			for _, r := range rows {
				sum += r.MeasuredS
			}
			b.ReportMetric(sum/float64(len(rows)), "avg-modeled-s")
		}
	}
}

// BenchmarkTableII regenerates the full Table II over every characterized
// benchmark (all but perlbench, as in the paper).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite, err := benchmarks.CharacterizedSuite()
		if err != nil {
			b.Fatal(err)
		}
		results, err := harness.RunSuite(context.Background(), suite, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows, err := report.TableII(results, results.SortedBenchmarks())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(report.FormatTableII(rows))
			for _, r := range rows {
				if r.Benchmark == "523.xalancbmk_r" {
					b.ReportMetric(r.TopDown.Score, "xalan-ugV")
				}
				if r.Benchmark == "557.xz_r" {
					b.ReportMetric(r.TopDown.Score, "xz-ugV")
				}
			}
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1: per-workload top-down stacked
// fractions for 523.xalancbmk_r (left) and 557.xz_r (right).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSubSuite(b, "523.xalancbmk_r", "557.xz_r")
		series, err := report.Figure1(results, "523.xalancbmk_r", "557.xz_r")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(report.FormatFigure1(series))
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2: per-workload function coverage for
// 531.deepsjeng_r (left) and 557.xz_r (right).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSubSuite(b, "531.deepsjeng_r", "557.xz_r")
		series, err := report.Figure2(results, 6, "531.deepsjeng_r", "557.xz_r")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(report.FormatFigure2(series))
		}
	}
}

// BenchmarkAblationLowMeanArtifact reproduces the Section V-B caveat: lbm's
// near-zero bad-speculation category has a tiny geometric mean with a large
// geometric standard deviation, which inflates μg(V). The ablation reports
// the benchmark's μg(V) with all four categories against the score computed
// from the remaining three.
func BenchmarkAblationLowMeanArtifact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSubSuite(b, "519.lbm_r")
		ms := results["519.lbm_r"]
		var obs []stats.TopDown
		for _, m := range ms {
			obs = append(obs, m.TopDown)
		}
		sum, err := stats.SummarizeTopDown(obs)
		if err != nil {
			b.Fatal(err)
		}
		withoutBadSpec, err := stats.VariationScore([]stats.CategorySummary{
			sum.FrontEnd, sum.BackEnd, sum.Retiring,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("Ablation A1 (lbm low-mean artifact):\n")
			fmt.Printf("  bad-spec: μg=%.4f%% σg=%.2f (tiny mean, large deviation)\n",
				sum.BadSpec.GeoMean*100, sum.BadSpec.GeoStd)
			fmt.Printf("  μg(V) with all 4 categories:    %8.2f\n", sum.Score)
			fmt.Printf("  μg(V) without the s category:   %8.2f\n\n", withoutBadSpec)
			b.ReportMetric(sum.Score, "ugV-4cat")
			b.ReportMetric(withoutBadSpec, "ugV-3cat")
			if sum.Score <= withoutBadSpec {
				b.Fatalf("artifact not reproduced: %v <= %v", sum.Score, withoutBadSpec)
			}
		}
	}
}

// BenchmarkAblationCoverageOffset reproduces the Section V-C design
// choices: the 0.05%% "others" threshold and the small offset added to
// every time fraction. It reports μg(M) for deepsjeng and xz under the
// paper's parameters and under ×10 variants.
func BenchmarkAblationCoverageOffset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSubSuite(b, "531.deepsjeng_r", "557.xz_r")
		if i != 0 {
			continue
		}
		fmt.Println("Ablation A2 (coverage offset / threshold):")
		for _, name := range []string{"531.deepsjeng_r", "557.xz_r"} {
			var covs []stats.Coverage
			for _, m := range results[name] {
				covs = append(covs, m.Coverage)
			}
			for _, opt := range []struct {
				label string
				o     stats.CoverageOptions
			}{
				{"paper (thr=0.05%, off=1e-4)", stats.DefaultCoverageOptions()},
				{"thr x10", stats.CoverageOptions{OthersThreshold: 0.005, Offset: 0.0001}},
				{"offset x10", stats.CoverageOptions{OthersThreshold: 0.0005, Offset: 0.001}},
			} {
				sum, err := stats.SummarizeCoverage(covs, opt.o)
				if err != nil {
					b.Fatal(err)
				}
				fmt.Printf("  %-16s %-28s μg(M) = %7.2f (%d methods)\n",
					name, opt.label, sum.Score, len(sum.Methods))
			}
		}
		fmt.Println()
	}
}

// BenchmarkFDOCrossValidation runs the Section VII study: FDO evaluated
// with held-out cross-validation versus the criticized self-trained
// methodology, over the bundled input-sensitive programs.
func BenchmarkFDOCrossValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range fdo.StudyPrograms() {
			cv, err := fdo.CrossValidate(p)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				fmt.Print(fdo.FormatCrossValidation(cv))
				fmt.Println()
				b.ReportMetric(cv.GeoMeanSpeedup, p.Name+"-heldout-x")
				b.ReportMetric(cv.SelfGeoMeanSpeedup, p.Name+"-self-x")
			}
		}
	}
}

// BenchmarkSingleWorkloads provides per-benchmark micro baselines: the cost
// of one refrate execution of each benchmark under full instrumentation.
func BenchmarkSingleWorkloads(b *testing.B) {
	suite, err := benchmarks.Suite()
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range suite.Benchmarks() {
		bench := bench
		b.Run(bench.Name(), func(b *testing.B) {
			w, err := core.FindWorkload(bench, "test")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				m, err := harness.RunWorkload(context.Background(), bench, w, harness.Options{Reps: 1, Stride: 4})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(m.Cycles), "modeled-cycles")
				}
			}
		})
	}
}

// BenchmarkWorkloadClustering runs the Berube-style workload reduction
// (Section VII / CGO'09 reference [6]): cluster each of a pair of
// benchmarks' workloads into three behaviour groups and report the
// representatives.
func BenchmarkWorkloadClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSubSuite(b, "557.xz_r", "519.lbm_r")
		for _, name := range results.SortedBenchmarks() {
			ms := results[name]
			sel, err := cluster.Select(ms, cluster.Options{K: 3})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				fmt.Print(cluster.FormatSelection(name, sel))
				b.ReportMetric(sel.Clustering.Cost, "cluster-cost-"+name)
			}
		}
		if i == 0 {
			fmt.Println()
		}
	}
}

// BenchmarkOptLevelStudy runs the optimization-level variation study
// distributed with the Alberta Workloads (branch prediction, cache/TLB and
// execution time across compiler configurations).
func BenchmarkOptLevelStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := optstudy.Run(fdo.StudyPrograms())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(optstudy.Format(rows))
		}
	}
}
